//! Queue pairs and RDMA verbs.
//!
//! The verbs reproduce the completion semantics the paper builds on
//! (Section 2.4, Fig. 1):
//!
//! * **RC**: the sender's work completion (WC) fires when the receiving
//!   RNIC has the data in its *volatile* SRAM and has returned a hardware
//!   ACK — i.e. **before** the data is persistent. The DMA to memory/PM
//!   proceeds asynchronously; [`PersistToken`] resolves when it lands.
//! * **UC/UD**: the WC fires once the sender RNIC has pushed the data onto
//!   the wire; nothing at all is known about the receiver.
//! * **read**: PCIe ordering forces the remote RNIC to drain posted DMA
//!   writes before servicing the read — the mechanism behind the paper's
//!   emulated `WFlush` (read-after-write).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use prdma_simnet::journal::{EventKind, Subsystem, NO_ID};
use prdma_simnet::trace::{Phase, Span};
use prdma_simnet::{
    oneshot, FifoResource, Notify, OneshotPool, OneshotReceiver, SharedLink, SimDuration, SimHandle,
};

use crate::config::RnicConfig;
use crate::nic::{MemTarget, RdmaError, RdmaResult, Rnic};
use crate::payload::Payload;

/// RDMA transport mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpMode {
    /// Reliable connection: lossless, in-order, hardware-ACKed.
    Rc,
    /// Unreliable connection.
    Uc,
    /// Unreliable datagram (MTU-limited).
    Ud,
}

/// A completion delivered to the receiver's CQ for two-sided traffic
/// (`send`) and `write_imm`.
#[derive(Debug, Clone)]
pub struct RecvCompletion {
    /// The received payload.
    pub payload: Payload,
    /// Immediate value, if this was a `write_imm`.
    pub imm: Option<u32>,
    /// Where the data was placed.
    pub target: MemTarget,
    /// Whether the data was already durable when this completion fired
    /// (true only for PM targets with DDIO disabled).
    pub durable: bool,
}

/// Outcome of a receiver-side DMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaOutcome {
    /// Bytes reached the persistence domain.
    pub durable: bool,
    /// The message reached the receiver at all (false = dropped on an
    /// unreliable transport; the sender's WC fired regardless).
    pub delivered: bool,
}

/// Resolves when an RDMA write/send's DMA has finished on the receiver;
/// yields whether the bytes are durable at that point.
pub struct PersistToken {
    rx: OneshotReceiver<DmaOutcome>,
}

impl PersistToken {
    /// Wait for the receiver-side DMA to complete; returns durability.
    pub async fn wait(self) -> bool {
        self.rx.await.map(|o| o.durable).unwrap_or(false)
    }

    /// Wait for the full outcome (durability + delivery) — what
    /// unreliable-transport protocols poll to decide on retries.
    pub async fn wait_outcome(self) -> DmaOutcome {
        self.rx.await.unwrap_or(DmaOutcome {
            durable: false,
            delivered: false,
        })
    }

    /// A token that is already resolved (for error paths / tests).
    pub fn resolved(durable: bool) -> Self {
        let (tx, rx) = oneshot();
        tx.send(DmaOutcome {
            durable,
            delivered: true,
        });
        PersistToken { rx }
    }

    /// A token for a message dropped on an unreliable transport.
    pub fn resolved_dropped() -> Self {
        let (tx, rx) = oneshot();
        tx.send(DmaOutcome {
            durable: false,
            delivered: false,
        });
        PersistToken { rx }
    }
}

/// One endpoint's receive-side state (posted recv WQEs + CQ).
struct Endpoint {
    posted_recvs: RefCell<VecDeque<MemTarget>>,
    recv_posted: Notify,
    completions: RefCell<VecDeque<RecvCompletion>>,
    completion_ready: Notify,
}

impl Endpoint {
    fn new() -> Rc<Self> {
        Rc::new(Endpoint {
            posted_recvs: RefCell::new(VecDeque::new()),
            recv_posted: Notify::new(),
            completions: RefCell::new(VecDeque::new()),
            completion_ready: Notify::new(),
        })
    }

    async fn take_recv_target(&self) -> MemTarget {
        loop {
            if let Some(t) = self.posted_recvs.borrow_mut().pop_front() {
                return t;
            }
            self.recv_posted.notified().await;
        }
    }

    fn push_completion(&self, c: RecvCompletion) {
        self.completions.borrow_mut().push_back(c);
        self.completion_ready.notify_one();
    }

    async fn pop_completion(&self) -> RecvCompletion {
        loop {
            if let Some(c) = self.completions.borrow_mut().pop_front() {
                return c;
            }
            self.completion_ready.notified().await;
        }
    }
}

struct QpInner {
    handle: SimHandle,
    mode: QpMode,
    local: Rnic,
    remote: Rnic,
    out_link: SharedLink,
    back_link: SharedLink,
    local_ep: Rc<Endpoint>,
    remote_ep: Rc<Endpoint>,
    sender_cpu: RefCell<Option<FifoResource>>,
    /// RPC id stamped onto the next posted verb's journal records
    /// ([`Qp::tag_rpc`]); consumed (reset to `NO_ID`) at verb entry.
    rpc_tag: Cell<u64>,
    /// Per-connection recycler for the one [`PersistToken`] oneshot
    /// every verb mints — at open-loop scale the dominant short-lived
    /// allocation on the data path.
    token_pool: OneshotPool<DmaOutcome>,
}

/// One endpoint of a connected queue pair.
#[derive(Clone)]
pub struct Qp {
    inner: Rc<QpInner>,
}

/// Create a connected QP pair between two RNICs over the given directed
/// links. `(a_to_b, b_to_a)` are the wire directions.
pub fn connect(
    handle: SimHandle,
    mode: QpMode,
    a: Rnic,
    b: Rnic,
    a_to_b: SharedLink,
    b_to_a: SharedLink,
) -> (Qp, Qp) {
    let ep_a = Endpoint::new();
    let ep_b = Endpoint::new();
    let qa = Qp {
        inner: Rc::new(QpInner {
            handle: handle.clone(),
            mode,
            local: a.clone(),
            remote: b.clone(),
            out_link: a_to_b.clone(),
            back_link: b_to_a.clone(),
            local_ep: Rc::clone(&ep_a),
            remote_ep: Rc::clone(&ep_b),
            sender_cpu: RefCell::new(None),
            rpc_tag: Cell::new(NO_ID),
            token_pool: OneshotPool::new(),
        }),
    };
    let qb = Qp {
        inner: Rc::new(QpInner {
            handle,
            mode,
            local: b,
            remote: a,
            out_link: b_to_a,
            back_link: a_to_b,
            local_ep: ep_b,
            remote_ep: ep_a,
            sender_cpu: RefCell::new(None),
            rpc_tag: Cell::new(NO_ID),
            token_pool: OneshotPool::new(),
        }),
    };
    (qa, qb)
}

impl Qp {
    /// Transport mode of this QP.
    pub fn mode(&self) -> QpMode {
        self.inner.mode
    }

    /// The local RNIC.
    pub fn local(&self) -> &Rnic {
        &self.inner.local
    }

    /// The remote RNIC.
    pub fn remote(&self) -> &Rnic {
        &self.inner.remote
    }

    /// Route verb-post software costs through a CPU core pool, so sender
    /// CPU contention (paper Fig. 16) delays posts realistically.
    pub fn set_sender_cpu(&self, cpu: FifoResource) {
        *self.inner.sender_cpu.borrow_mut() = Some(cpu);
    }

    fn cfg(&self) -> &RnicConfig {
        self.inner.local.config()
    }

    /// Stamp the next posted verb's journal records with an RPC id, so
    /// span analyzers can attribute individual wire segments (data-out,
    /// retransmits, hardware ACKs) to the request that caused them. The
    /// tag applies to exactly one verb: it is consumed at the next verb's
    /// entry, before any interleaving can occur (the cooperative executor
    /// polls the verb's future synchronously).
    pub fn tag_rpc(&self, rpc_id: u64) {
        self.inner.rpc_tag.set(rpc_id);
    }

    fn take_tag(&self) -> u64 {
        self.inner.rpc_tag.replace(NO_ID)
    }

    /// Journal one event on the posting (local) node's Qp track.
    fn jot_local(&self, kind: EventKind, rpc_id: u64, bytes: u64) {
        if let Some(j) = self.inner.local.journal() {
            j.record(Subsystem::Qp, kind, rpc_id, NO_ID, bytes);
        }
    }

    /// Journal one event on the remote node's Qp track (segments the
    /// remote NIC puts on the wire back toward us: ACKs, read data).
    fn jot_remote(&self, kind: EventKind, rpc_id: u64, bytes: u64) {
        if let Some(j) = self.inner.remote.journal() {
            j.record(Subsystem::Qp, kind, rpc_id, NO_ID, bytes);
        }
    }

    async fn post_cost(&self, rpc: u64, d: SimDuration) {
        // Verb posting is software on the local node; the tracer's role
        // decides whether that is sender- or receiver-side time.
        self.jot_local(EventKind::Doorbell, rpc, 0);
        let _span = self.inner.local.tracer().map(|t| t.span_sw());
        let cpu = self.inner.sender_cpu.borrow().clone();
        match cpu {
            Some(cpu) => cpu.process(d).await,
            None => self.inner.handle.sleep(d).await,
        }
    }

    /// Wire-phase span against the local node's tracer (link legs).
    fn wire_span(&self) -> Option<Span> {
        self.inner.local.tracer().map(|t| t.span(Phase::Wire))
    }

    fn check_mtu(&self, len: u64) -> RdmaResult<()> {
        if self.inner.mode == QpMode::Ud && len > self.cfg().ud_mtu {
            return Err(RdmaError::MtuExceeded {
                len,
                mtu: self.cfg().ud_mtu,
            });
        }
        Ok(())
    }

    /// One-sided RDMA write. Resolves at the sender's WC (see module docs);
    /// the returned token resolves when the receiver-side DMA lands.
    pub async fn write(&self, target: MemTarget, payload: Payload) -> RdmaResult<PersistToken> {
        let rpc = self.take_tag();
        self.check_mtu(payload.len())?;
        self.post_cost(rpc, self.cfg().post_onesided).await;
        self.transfer_and_ack(rpc, Delivery::Write { target }, payload, None)
            .await
    }

    /// RDMA write with a 32-bit immediate: like `write`, plus a completion
    /// event in the receiver's CQ once the data is placed.
    pub async fn write_imm(
        &self,
        target: MemTarget,
        payload: Payload,
        imm: u32,
    ) -> RdmaResult<PersistToken> {
        let rpc = self.take_tag();
        self.check_mtu(payload.len())?;
        self.post_cost(rpc, self.cfg().post_onesided).await;
        self.transfer_and_ack(rpc, Delivery::Write { target }, payload, Some(imm))
            .await
    }

    /// Two-sided RDMA send: the receiver must have posted a recv buffer;
    /// data is DMA'd there and a CQ completion is raised.
    pub async fn send(&self, payload: Payload) -> RdmaResult<PersistToken> {
        let rpc = self.take_tag();
        self.check_mtu(payload.len())?;
        self.post_cost(rpc, self.cfg().post_twosided).await;
        self.transfer_and_ack(rpc, Delivery::Send, payload, None)
            .await
    }

    /// Doorbell-batched writes: one post for `items.len()` WQEs, messages
    /// pipelined on the wire, a single coalesced RC ACK at the end.
    pub async fn write_batch(
        &self,
        items: Vec<(MemTarget, Payload)>,
    ) -> RdmaResult<Vec<PersistToken>> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let rpc = self.take_tag();
        let k = items.len() as u64;
        self.post_cost(
            rpc,
            self.cfg().post_onesided + self.cfg().post_batched_extra * (k - 1),
        )
        .await;
        let mut tokens = Vec::with_capacity(items.len());
        let n = items.len();
        for (i, (target, payload)) in items.into_iter().enumerate() {
            let last = i + 1 == n;
            let token = self
                .transfer(rpc, Delivery::Write { target }, payload, None, last)
                .await?;
            tokens.push(token);
        }
        Ok(tokens)
    }

    /// Doorbell-batched sends: one post for all WQEs, messages pipelined
    /// on the wire, a single coalesced RC ACK. Each message still pays
    /// its per-message receiver costs (recv-WQE fetch, delivery).
    pub async fn send_batch(&self, payloads: Vec<Payload>) -> RdmaResult<Vec<PersistToken>> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        for p in &payloads {
            self.check_mtu(p.len())?;
        }
        let rpc = self.take_tag();
        let k = payloads.len() as u64;
        self.post_cost(
            rpc,
            self.cfg().post_twosided + self.cfg().post_batched_extra * (k - 1),
        )
        .await;
        let mut tokens = Vec::with_capacity(payloads.len());
        let n = payloads.len();
        for (i, payload) in payloads.into_iter().enumerate() {
            let last = i + 1 == n;
            tokens.push(
                self.transfer(rpc, Delivery::Send, payload, None, last)
                    .await?,
            );
        }
        Ok(tokens)
    }

    /// One-sided RDMA read returning real content.
    pub async fn read_bytes(&self, target: MemTarget, len: u64) -> RdmaResult<Vec<u8>> {
        match self.read_inner(target, len, true).await? {
            Payload::Inline(b) => Ok(b.to_vec()),
            other => unreachable!("inline read returned {other:?}"),
        }
    }

    /// One-sided RDMA read modeling only the transfer time (benchmarks).
    pub async fn read_synthetic(&self, target: MemTarget, len: u64) -> RdmaResult<()> {
        self.read_inner(target, len, false).await?;
        Ok(())
    }

    /// One-sided GET fast path: an RDMA READ of a server-published DRAM
    /// mirror slot. Same wire and remote-PCIe legs as [`Qp::read_bytes`]
    /// (the remote RNIC drains posted writes and pays the PCIe read
    /// round trip), but the response payload is additionally staged
    /// through the *local* RNIC's SRAM on arrival — the read-side
    /// counterpart of the write path's staging — so mirror-read traffic
    /// shows up in SRAM occupancy gauges and contends for staging space.
    pub async fn read_mirror(&self, target: MemTarget, len: u64) -> RdmaResult<Vec<u8>> {
        let rpc = self.take_tag();
        self.inner.remote.check_up()?;
        self.post_cost(rpc, self.cfg().post_onesided).await;
        self.inner.local.process_message().await;
        // Read request: header-sized message.
        {
            let _span = self.wire_span();
            self.jot_local(EventKind::WireSegment, rpc, self.cfg().header_bytes + 16);
            self.inner
                .out_link
                .transmit(self.cfg().header_bytes + 16)
                .await;
        }
        self.inner.remote.check_up()?;
        self.inner.remote.process_message().await;
        let payload = self.inner.remote.dma_read(target, len, true).await?;
        {
            let _span = self.wire_span();
            self.jot_remote(EventKind::WireSegment, rpc, self.cfg().header_bytes + len);
            self.inner
                .back_link
                .transmit(self.cfg().header_bytes + len)
                .await;
        }
        self.inner.local.sram_admit(len);
        self.inner.local.process_message().await;
        self.inner.local.sram_release(len);
        match payload {
            Payload::Inline(b) => Ok(b.to_vec()),
            other => unreachable!("inline mirror read returned {other:?}"),
        }
    }

    async fn read_inner(&self, target: MemTarget, len: u64, inline: bool) -> RdmaResult<Payload> {
        let rpc = self.take_tag();
        self.inner.remote.check_up()?;
        self.post_cost(rpc, self.cfg().post_onesided).await;
        self.inner.local.process_message().await;
        // Read request: header-sized message.
        {
            let _span = self.wire_span();
            self.jot_local(EventKind::WireSegment, rpc, self.cfg().header_bytes + 16);
            self.inner
                .out_link
                .transmit(self.cfg().header_bytes + 16)
                .await;
        }
        self.inner.remote.check_up()?;
        self.inner.remote.process_message().await;
        let payload = self.inner.remote.dma_read(target, len, inline).await?;
        {
            let _span = self.wire_span();
            self.jot_remote(EventKind::WireSegment, rpc, self.cfg().header_bytes + len);
            self.inner
                .back_link
                .transmit(self.cfg().header_bytes + len)
                .await;
        }
        self.inner.local.process_message().await;
        Ok(payload)
    }

    /// A flush-style control round trip: a header-only command that makes
    /// the remote RNIC drain its posted DMA writes before ACKing. This is
    /// the wire behaviour of a native RDMA Flush verb (no PCIe read is
    /// performed, unlike the emulated read-after-write).
    pub async fn flush_command(&self) -> RdmaResult<()> {
        let rpc = self.take_tag();
        self.inner.remote.check_up()?;
        self.inner.local.process_message().await;
        {
            let _span = self.wire_span();
            self.jot_local(EventKind::WireSegment, rpc, self.cfg().header_bytes);
            self.inner.out_link.transmit(self.cfg().header_bytes).await;
        }
        self.inner.remote.check_up()?;
        self.inner.remote.process_message().await;
        self.inner.remote.drain_posted_writes().await?;
        {
            let _span = self.wire_span();
            self.jot_remote(EventKind::WireSegment, rpc, self.cfg().ack_bytes);
            self.inner.back_link.transmit(self.cfg().ack_bytes).await;
        }
        self.inner.local.process_message().await;
        Ok(())
    }

    /// Post a receive buffer for inbound `send`s.
    pub fn post_recv(&self, target: MemTarget) {
        self.inner
            .local_ep
            .posted_recvs
            .borrow_mut()
            .push_back(target);
        self.inner.local_ep.recv_posted.notify_one();
    }

    /// Flush this endpoint's receive ring: drop every posted-but-unconsumed
    /// recv WQE and any undrained completions, returning how many of each
    /// were discarded. Models the software re-arm after a QP error
    /// transition — a crash that aborts an in-flight send consumes a WQE
    /// that can never complete, leaving the surviving ring offset from
    /// what the application posted; recovery flushes and re-posts.
    pub fn flush_recvs(&self) -> (usize, usize) {
        let ep = &self.inner.local_ep;
        let wqes = std::mem::take(&mut *ep.posted_recvs.borrow_mut()).len();
        let cqes = std::mem::take(&mut *ep.completions.borrow_mut()).len();
        (wqes, cqes)
    }

    /// Await the next CQ completion (inbound `send` or `write_imm`).
    pub async fn recv(&self) -> RecvCompletion {
        self.inner.local_ep.pop_completion().await
    }

    /// Non-blocking CQ poll.
    pub fn try_recv(&self) -> Option<RecvCompletion> {
        self.inner.local_ep.completions.borrow_mut().pop_front()
    }

    async fn transfer_and_ack(
        &self,
        rpc: u64,
        delivery: Delivery,
        payload: Payload,
        imm: Option<u32>,
    ) -> RdmaResult<PersistToken> {
        self.transfer(rpc, delivery, payload, imm, true).await
    }

    /// The shared wire path: local NIC -> link -> remote NIC -> SRAM, then
    /// an asynchronous DMA/delivery task; RC additionally waits for the
    /// hardware ACK before returning (`ack` selects whether this message
    /// carries the coalesced ACK in a batch).
    async fn transfer(
        &self,
        rpc: u64,
        delivery: Delivery,
        payload: Payload,
        imm: Option<u32>,
        ack: bool,
    ) -> RdmaResult<PersistToken> {
        self.inner.remote.check_up()?;
        let len = payload.len();
        self.inner.local.process_message().await;
        {
            let _span = self.wire_span();
            self.jot_local(EventKind::WireSegment, rpc, self.cfg().header_bytes + len);
            self.inner
                .out_link
                .transmit(self.cfg().header_bytes + len)
                .await;
        }
        // Wire loss: RC retransmits in hardware (pure delay); UC/UD drop
        // the message silently — the sender still gets its local WC. The
        // effective rate combines the configured baseline with any
        // fault-injected burst on the receiving node; the RNG is only
        // consulted when a loss is possible, so loss-free schedules are
        // byte-identical with and without the fault machinery.
        let loss_rate = self.cfg().loss_rate.max(self.inner.remote.injected_loss());
        if loss_rate > 0.0 && self.inner.handle.gen_f64() < loss_rate {
            match self.inner.mode {
                QpMode::Rc => {
                    let _span = self.wire_span();
                    self.inner.local.note_retransmit();
                    let d = self.cfg().rc_retransmit_delay;
                    self.inner.handle.sleep(d).await;
                    self.jot_local(EventKind::WireSegment, rpc, self.cfg().header_bytes + len);
                    self.inner
                        .out_link
                        .transmit(self.cfg().header_bytes + len)
                        .await;
                }
                QpMode::Uc | QpMode::Ud => {
                    return Ok(PersistToken::resolved_dropped());
                }
            }
        }
        self.inner.remote.check_up()?;
        self.inner.remote.process_message().await;

        // Data is now staged in the remote RNIC's volatile SRAM.
        self.inner.remote.sram_admit(len);
        let (tx, rx) = self.inner.token_pool.oneshot();
        let ticket = self.inner.remote.begin_pending_dma();
        let remote = self.inner.remote.clone();
        let remote_ep = Rc::clone(&self.inner.remote_ep);
        self.inner.handle.spawn(async move {
            let (target, consumed_recv) = match delivery {
                Delivery::Write { target } => {
                    if imm.is_some() {
                        // write-imm consumes a recv WQE for its CQ event:
                        // the RNIC fetches it over PCIe (IB semantics).
                        remote.fetch_recv_wqe().await;
                    }
                    (target, false)
                }
                Delivery::Send => {
                    let t = remote_ep.take_recv_target().await;
                    // Two-sided delivery: the RNIC fetches the recv WQE
                    // over PCIe before it can DMA the payload.
                    remote.fetch_recv_wqe().await;
                    (t, true)
                }
            };
            let durable = remote
                .dma_write_untracked(target, &payload)
                .await
                .unwrap_or(false);
            remote.end_pending_dma(ticket);
            remote.sram_release(len);
            if consumed_recv || imm.is_some() {
                // The receiving CPU sees the completion only once the CQE
                // itself has been DMAed to host memory.
                remote.dma_write_cqe().await;
                remote_ep.push_completion(RecvCompletion {
                    payload,
                    imm,
                    target,
                    durable,
                });
            }
            tx.send(DmaOutcome {
                durable,
                delivered: true,
            });
        });

        if self.inner.mode == QpMode::Rc && ack {
            // Hardware ACK generated at SRAM arrival (NOT persistence).
            {
                let _span = self.wire_span();
                self.jot_remote(EventKind::WireSegment, rpc, self.cfg().ack_bytes);
                self.inner.back_link.transmit(self.cfg().ack_bytes).await;
            }
            self.inner.local.process_message().await;
        }
        Ok(PersistToken { rx })
    }
}

#[derive(Clone, Copy)]
enum Delivery {
    Write { target: MemTarget },
    Send,
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdma_pmem::{PmConfig, PmDevice, VolatileMemory};
    use prdma_simnet::Sim;

    fn pair(sim: &Sim, mode: QpMode) -> (Qp, Qp) {
        pair_cfg(sim, mode, RnicConfig::default())
    }

    fn pair_cfg(sim: &Sim, mode: QpMode, cfg: RnicConfig) -> (Qp, Qp) {
        let h = sim.handle();
        let mk = |cfg: &RnicConfig| {
            let pm = PmDevice::new(h.clone(), PmConfig::with_capacity(1 << 20));
            let dram = VolatileMemory::new(1 << 20);
            Rnic::new(h.clone(), cfg.clone(), pm, dram)
        };
        let a = mk(&cfg);
        let b = mk(&cfg);
        let ab = SharedLink::new(h.clone(), cfg.link_gbps, cfg.propagation);
        let ba = SharedLink::new(h.clone(), cfg.link_gbps, cfg.propagation);
        connect(h, mode, a, b, ab, ba)
    }

    #[test]
    fn rc_write_places_data_in_remote_pm() {
        let mut sim = Sim::new(1);
        let (qa, qb) = pair(&sim, QpMode::Rc);
        let qa2 = qa.clone();
        sim.block_on(async move {
            let token = qa2
                .write(
                    MemTarget::Pm(64),
                    Payload::from_bytes(b"persist me".to_vec()),
                )
                .await
                .unwrap();
            assert!(token.wait().await);
        });
        assert_eq!(qb.local().pm().read_persistent_view(64, 10), b"persist me");
    }

    #[test]
    fn rc_wc_fires_before_persistence() {
        let mut sim = Sim::new(1);
        let (qa, _qb) = pair(&sim, QpMode::Rc);
        let h = sim.handle();
        let (wc_at, persist_at) = sim.block_on(async move {
            let token = qa
                .write(MemTarget::Pm(0), Payload::synthetic(65536, 1))
                .await
                .unwrap();
            let wc = h.now();
            token.wait().await;
            (wc, h.now())
        });
        // This is the paper's core hazard: WC (ACK) precedes durability.
        assert!(wc_at < persist_at, "wc {wc_at} persist {persist_at}");
    }

    #[test]
    fn rc_small_write_rtt_in_expected_range() {
        let mut sim = Sim::new(1);
        let (qa, _qb) = pair(&sim, QpMode::Rc);
        let h = sim.handle();
        let t = sim.block_on(async move {
            qa.write(MemTarget::Pm(0), Payload::synthetic(32, 0))
                .await
                .unwrap();
            h.now()
        });
        // Calibration target: a small RC write completes (post to WC) in
        // ~1.5-2 us on ConnectX-4-class hardware.
        let us = t.as_nanos() as f64 / 1000.0;
        assert!((1.2..3.0).contains(&us), "RTT {us} us");
    }

    #[test]
    fn uc_write_completes_without_ack_leg() {
        let mut sim = Sim::new(2);
        let (qa_rc, _b1) = pair(&sim, QpMode::Rc);
        let h = sim.handle();
        let t_rc = sim.block_on(async move {
            qa_rc
                .write(MemTarget::Pm(0), Payload::synthetic(1024, 0))
                .await
                .unwrap();
            h.now()
        });
        let mut sim2 = Sim::new(2);
        let (qa_uc, _b2) = pair(&sim2, QpMode::Uc);
        let h2 = sim2.handle();
        let t_uc = sim2.block_on(async move {
            qa_uc
                .write(MemTarget::Pm(0), Payload::synthetic(1024, 0))
                .await
                .unwrap();
            h2.now()
        });
        assert!(t_uc < t_rc, "uc {t_uc} !< rc {t_rc}");
    }

    #[test]
    fn ud_send_respects_mtu() {
        let mut sim = Sim::new(1);
        let (qa, _qb) = pair(&sim, QpMode::Ud);
        let err =
            sim.block_on(async move { qa.send(Payload::synthetic(8192, 0)).await.err().unwrap() });
        assert_eq!(
            err,
            RdmaError::MtuExceeded {
                len: 8192,
                mtu: 4096
            }
        );
    }

    #[test]
    fn send_recv_roundtrip_with_posted_buffer() {
        let mut sim = Sim::new(1);
        let (qa, qb) = pair(&sim, QpMode::Rc);
        qb.post_recv(MemTarget::Dram(256));
        let qb2 = qb.clone();
        sim.spawn(async move {
            let c = qb2.recv().await;
            assert_eq!(c.payload.bytes(), Some(&b"msg"[..]));
            assert_eq!(c.target, MemTarget::Dram(256));
            assert!(!c.durable); // DRAM is never durable
        });
        sim.block_on(async move {
            qa.send(Payload::from_bytes(b"msg".to_vec())).await.unwrap();
        });
        // The sender's WC does not imply remote placement (the paper's
        // hazard): drain the receive-side DMA before checking memory.
        sim.run();
        assert_eq!(qb.local().dram().read(256, 3), b"msg");
    }

    #[test]
    fn send_waits_for_recv_posting() {
        let mut sim = Sim::new(1);
        let (qa, qb) = pair(&sim, QpMode::Rc);
        let h = sim.handle();
        // Post the recv only after 50us.
        let qb2 = qb.clone();
        let h2 = h.clone();
        sim.spawn(async move {
            h2.sleep(SimDuration::from_micros(50)).await;
            qb2.post_recv(MemTarget::Dram(0));
        });
        let qb3 = qb.clone();
        let t = sim.block_on(async move {
            let tok = qa.send(Payload::synthetic(64, 0)).await.unwrap();
            tok.wait().await;
            let _ = qb3.recv().await;
            h.now()
        });
        assert!(t.as_nanos() >= 50_000);
    }

    #[test]
    fn write_imm_raises_completion_after_placement() {
        let mut sim = Sim::new(1);
        let (qa, qb) = pair(&sim, QpMode::Rc);
        let qb2 = qb.clone();
        let got = sim.block_on(async move {
            qa.write_imm(MemTarget::Pm(0), Payload::from_bytes(vec![5; 16]), 0xABCD)
                .await
                .unwrap();
            let c = qb2.recv().await;
            (c.imm, c.durable)
        });
        assert_eq!(got, (Some(0xABCD), true));
    }

    #[test]
    fn read_after_write_observes_persisted_data() {
        let mut sim = Sim::new(1);
        let (qa, qb) = pair(&sim, QpMode::Rc);
        let out = sim.block_on(async move {
            qa.write(MemTarget::Pm(0), Payload::from_bytes(vec![0xEE; 4096]))
                .await
                .unwrap();
            // Emulated WFlush: read the last byte; PCIe ordering drains the
            // posted DMA first, so afterwards the data must be durable.
            let b = qa.read_bytes(MemTarget::Pm(4095), 1).await.unwrap();
            (b, qb.local().pm().is_persisted(0, 4096))
        });
        assert_eq!(out.0, vec![0xEE]);
        assert!(out.1, "data must be durable after read-after-write");
    }

    #[test]
    fn mirror_read_returns_dram_bytes_and_costs_a_round_trip() {
        let mut sim = Sim::new(1);
        let (qa, qb) = pair(&sim, QpMode::Rc);
        qb.local().dram().write(4096, &[0xA5; 32]);
        let h = sim.handle();
        let (bytes, elapsed) = sim.block_on(async move {
            let t0 = h.now();
            let b = qa.read_mirror(MemTarget::Dram(4096), 32).await.unwrap();
            (b, h.now() - t0)
        });
        assert_eq!(bytes, vec![0xA5; 32]);
        // A one-sided read pays a full wire round trip plus the remote
        // PCIe read: comfortably over a microsecond, well under ten.
        assert!(
            elapsed.as_nanos() > 1_000 && elapsed.as_nanos() < 10_000,
            "mirror read RTT {} ns out of expected range",
            elapsed.as_nanos()
        );
    }

    #[test]
    fn write_to_down_node_fails() {
        let mut sim = Sim::new(1);
        let (qa, qb) = pair(&sim, QpMode::Rc);
        qb.local().crash();
        let err = sim.block_on(async move {
            qa.write(MemTarget::Pm(0), Payload::synthetic(64, 0))
                .await
                .err()
                .unwrap()
        });
        assert_eq!(err, RdmaError::Disconnected);
    }

    #[test]
    fn batch_write_amortizes_post_cost() {
        // Total time for a 4-message batch must be well below 4 sequential
        // writes (single post + pipelined wire + one coalesced ACK).
        let elapsed = |batched: bool| {
            let mut sim = Sim::new(9);
            let (qa, _qb) = pair(&sim, QpMode::Rc);
            let h = sim.handle();
            sim.block_on(async move {
                if batched {
                    let items = (0..4)
                        .map(|i| (MemTarget::Pm(i * 8192), Payload::synthetic(4096, i)))
                        .collect();
                    qa.write_batch(items).await.unwrap();
                } else {
                    for i in 0..4u64 {
                        qa.write(MemTarget::Pm(i * 8192), Payload::synthetic(4096, i))
                            .await
                            .unwrap();
                    }
                }
                h.now()
            })
        };
        let t_seq = elapsed(false);
        let t_batch = elapsed(true);
        assert!(
            t_batch.as_nanos() * 2 < t_seq.as_nanos() * 2 && t_batch < t_seq,
            "batch {t_batch} vs seq {t_seq}"
        );
    }

    #[test]
    fn ddio_write_is_not_durable_until_clflush() {
        let mut sim = Sim::new(1);
        let (qa, qb) = pair_cfg(&sim, QpMode::Rc, RnicConfig::with_ddio());
        let qb2 = qb.clone();
        sim.block_on(async move {
            let tok = qa
                .write(MemTarget::Pm(0), Payload::from_bytes(vec![3; 256]))
                .await
                .unwrap();
            let durable = tok.wait().await;
            assert!(!durable, "DDIO write must land volatile");
            assert!(!qb2.local().pm().is_persisted(0, 256));
            // Receiver CPU flushes.
            qb2.local().pm().clflush(0, 256).await.unwrap();
            assert!(qb2.local().pm().is_persisted(0, 256));
        });
    }

    #[test]
    fn larger_payloads_take_longer() {
        let time_for = |len: u64| {
            let mut sim = Sim::new(4);
            let (qa, _qb) = pair(&sim, QpMode::Rc);
            let h = sim.handle();
            sim.block_on(async move {
                qa.write(MemTarget::Pm(0), Payload::synthetic(len, 0))
                    .await
                    .unwrap();
                h.now()
            })
        };
        let t1 = time_for(64);
        let t2 = time_for(4096);
        let t3 = time_for(65536);
        assert!(t1 < t2 && t2 < t3, "{t1} {t2} {t3}");
        // 64KB at 40Gbps is ~13us of wire time alone.
        assert!(t3.as_nanos() > 13_000);
    }
}
