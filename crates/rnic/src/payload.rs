//! Message payloads.
//!
//! Correctness tests carry real bytes end to end; benchmark workloads use
//! synthetic payloads that carry only a length and an identity tag, so a
//! 300 K-operation 64 KB experiment costs no memory traffic in the host —
//! only simulated time.

use std::rc::Rc;

/// A message payload: real bytes, a synthetic (length, tag) marker, or a
/// sequential composition of both (e.g. a real log-entry header followed by
/// a synthetic data body, carried in one RDMA write).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Actual content, shared without copying.
    Inline(Rc<Vec<u8>>),
    /// Timing-only payload: `len` simulated bytes identified by `tag`.
    Synthetic {
        /// Simulated payload size in bytes.
        len: u64,
        /// Application-chosen identity (e.g. object id) for assertions.
        tag: u64,
    },
    /// Parts laid out back to back at the destination.
    Composite(Rc<Vec<Payload>>),
}

impl Payload {
    /// A payload from owned bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Payload::Inline(Rc::new(bytes))
    }

    /// A timing-only payload of `len` bytes tagged `tag`.
    pub fn synthetic(len: u64, tag: u64) -> Self {
        Payload::Synthetic { len, tag }
    }

    /// A composite payload from parts laid out back to back.
    pub fn composite(parts: Vec<Payload>) -> Self {
        Payload::Composite(Rc::new(parts))
    }

    /// Payload size in (simulated) bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Inline(b) => b.len() as u64,
            Payload::Synthetic { len, .. } => *len,
            Payload::Composite(parts) => parts.iter().map(Payload::len).sum(),
        }
    }

    /// True if the payload is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes, if this payload carries real content.
    pub fn bytes(&self) -> Option<&[u8]> {
        match self {
            Payload::Inline(b) => Some(b),
            Payload::Synthetic { .. } | Payload::Composite(_) => None,
        }
    }

    /// The identity tag of a synthetic payload.
    pub fn tag(&self) -> Option<u64> {
        match self {
            Payload::Inline(_) | Payload::Composite(_) => None,
            Payload::Synthetic { tag, .. } => Some(*tag),
        }
    }

    /// Every inline content span as `(offset, bytes)` relative to the
    /// payload start — what a DMA engine must actually place in memory.
    pub fn inline_parts(&self) -> Vec<(u64, &[u8])> {
        let mut out = Vec::new();
        self.collect_inline(0, &mut out);
        out
    }

    fn collect_inline<'a>(&'a self, base: u64, out: &mut Vec<(u64, &'a [u8])>) {
        match self {
            Payload::Inline(b) => out.push((base, b)),
            Payload::Synthetic { .. } => {}
            Payload::Composite(parts) => {
                let mut off = base;
                for p in parts.iter() {
                    p.collect_inline(off, out);
                    off += p.len();
                }
            }
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::from_bytes(v.to_vec())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::from_bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_payload_exposes_bytes() {
        let p = Payload::from_bytes(vec![1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.bytes(), Some(&[1u8, 2, 3][..]));
        assert_eq!(p.tag(), None);
        assert!(!p.is_empty());
    }

    #[test]
    fn synthetic_payload_has_len_and_tag_only() {
        let p = Payload::synthetic(65536, 42);
        assert_eq!(p.len(), 65536);
        assert_eq!(p.bytes(), None);
        assert_eq!(p.tag(), Some(42));
    }

    #[test]
    fn clone_shares_inline_bytes() {
        let p = Payload::from_bytes(vec![9; 1000]);
        let q = p.clone();
        if let (Payload::Inline(a), Payload::Inline(b)) = (&p, &q) {
            assert!(Rc::ptr_eq(a, b));
        } else {
            panic!("expected inline payloads");
        }
    }
}
