//! The network fabric: RNIC registry, directed links, QP connection
//! establishment, and background-traffic injection (paper Fig. 14).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use prdma_pmem::{PmDevice, VolatileMemory};
use prdma_simnet::{SharedLink, SimDuration, SimHandle, SimTime};

use crate::config::RnicConfig;
use crate::nic::Rnic;
use crate::qp::{connect, Qp, QpMode};

/// Identifies a node on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

struct FabricInner {
    handle: SimHandle,
    cfg: RnicConfig,
    nodes: RefCell<Vec<Rnic>>,
    /// One ingress link per *destination* node: the fabric is a
    /// full-bisection switch, so the bottleneck is each node's NIC port —
    /// all traffic towards a node serializes on its ingress (exactly the
    /// paper's single-server, many-senders topology in Fig. 17).
    links: RefCell<HashMap<NodeId, SharedLink>>,
}

/// A full-mesh RDMA fabric over simulated nodes.
#[derive(Clone)]
pub struct Fabric {
    inner: Rc<FabricInner>,
}

impl Fabric {
    /// A fabric whose links and RNICs use `cfg`.
    pub fn new(handle: SimHandle, cfg: RnicConfig) -> Self {
        Fabric {
            inner: Rc::new(FabricInner {
                handle,
                cfg,
                nodes: RefCell::new(Vec::new()),
                links: RefCell::new(HashMap::new()),
            }),
        }
    }

    /// The fabric's RNIC/link configuration.
    pub fn config(&self) -> &RnicConfig {
        &self.inner.cfg
    }

    /// The simulation handle.
    pub fn handle(&self) -> &SimHandle {
        &self.inner.handle
    }

    /// Register a node with its memories; returns its id.
    pub fn add_node(&self, pm: PmDevice, dram: VolatileMemory) -> NodeId {
        let rnic = Rnic::new(self.inner.handle.clone(), self.inner.cfg.clone(), pm, dram);
        let mut nodes = self.inner.nodes.borrow_mut();
        nodes.push(rnic);
        NodeId(nodes.len() - 1)
    }

    /// The RNIC of a node.
    pub fn rnic(&self, id: NodeId) -> Rnic {
        self.inner.nodes.borrow()[id.0].clone()
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.borrow().len()
    }

    /// The path `from -> to`: the destination's shared ingress link
    /// (created on first use).
    pub fn link(&self, from: NodeId, to: NodeId) -> SharedLink {
        assert_ne!(from, to, "no loopback links");
        let mut links = self.inner.links.borrow_mut();
        links
            .entry(to)
            .or_insert_with(|| {
                SharedLink::new(
                    self.inner.handle.clone(),
                    self.inner.cfg.link_gbps,
                    self.inner.cfg.propagation,
                )
            })
            .clone()
    }

    /// Establish a connected QP pair between two nodes.
    pub fn connect(&self, a: NodeId, b: NodeId, mode: QpMode) -> (Qp, Qp) {
        let ra = self.rnic(a);
        let rb = self.rnic(b);
        let ab = self.link(a, b);
        let ba = self.link(b, a);
        connect(self.inner.handle.clone(), mode, ra, rb, ab, ba)
    }

    /// Degrade (or restore, with `factor == 1.0`) the ingress link of
    /// `node`: every message towards it serializes `factor`× slower.
    /// Fault-injection hook for `FaultKind::LinkDegrade`.
    pub fn degrade_ingress(&self, node: NodeId, factor: f64) {
        // Materialize the ingress link even if nothing has used it yet so
        // the degradation applies to the first message too.
        let mut links = self.inner.links.borrow_mut();
        links
            .entry(node)
            .or_insert_with(|| {
                SharedLink::new(
                    self.inner.handle.clone(),
                    self.inner.cfg.link_gbps,
                    self.inner.cfg.propagation,
                )
            })
            .set_slowdown(factor);
    }

    /// Congest the `from -> to` link with a background stream of
    /// `msg_bytes`-sized packets every `period` until `until`.
    ///
    /// This reproduces the paper's "busy network" condition (Fig. 14): a
    /// background program contiguously sending small data packets.
    pub fn background_traffic(
        &self,
        from: NodeId,
        to: NodeId,
        msg_bytes: u64,
        period: SimDuration,
        until: SimTime,
    ) {
        let link = self.link(from, to);
        let handle = self.inner.handle.clone();
        let h2 = handle.clone();
        handle.spawn(async move {
            while h2.now() < until {
                link.transmit(msg_bytes).await;
                if period > SimDuration::ZERO {
                    h2.sleep(period).await;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::MemTarget;
    use crate::payload::Payload;
    use prdma_pmem::PmConfig;
    use prdma_simnet::Sim;

    fn two_node_fabric(sim: &Sim) -> (Fabric, NodeId, NodeId) {
        let f = Fabric::new(sim.handle(), RnicConfig::default());
        let mk = || {
            (
                PmDevice::new(sim.handle(), PmConfig::with_capacity(1 << 20)),
                VolatileMemory::new(1 << 20),
            )
        };
        let (pm_a, dram_a) = mk();
        let (pm_b, dram_b) = mk();
        let a = f.add_node(pm_a, dram_a);
        let b = f.add_node(pm_b, dram_b);
        (f, a, b)
    }

    #[test]
    fn links_are_memoized_per_direction() {
        let sim = Sim::new(1);
        let (f, a, b) = two_node_fabric(&sim);
        let l1 = f.link(a, b);
        let l2 = f.link(a, b);
        let l3 = f.link(b, a);
        drop(l1.transmit(0)); // never polled; links compared via shared stats
        assert_eq!(l1.bytes_moved(), l2.bytes_moved());
        assert_eq!(l3.bytes_moved(), 0);
        assert_eq!(f.node_count(), 2);
    }

    #[test]
    fn connect_yields_working_pair() {
        let mut sim = Sim::new(1);
        let (f, a, b) = two_node_fabric(&sim);
        let (qa, qb) = f.connect(a, b, QpMode::Rc);
        sim.block_on(async move {
            let tok = qa
                .write(MemTarget::Pm(0), Payload::from_bytes(vec![1, 2, 3]))
                .await
                .unwrap();
            assert!(tok.wait().await);
        });
        assert_eq!(qb.local().pm().read_persistent_view(0, 3), vec![1, 2, 3]);
    }

    #[test]
    fn background_traffic_inflates_latency() {
        let run = |congested: bool| {
            let mut sim = Sim::new(5);
            let (f, a, b) = two_node_fabric(&sim);
            if congested {
                // Saturating stream of 4KB packets, no gaps.
                f.background_traffic(
                    a,
                    b,
                    32768,
                    SimDuration::ZERO,
                    SimTime::from_nanos(u64::MAX / 2),
                );
            }
            let (qa, _qb) = f.connect(a, b, QpMode::Rc);
            let h = sim.handle();
            sim.block_on(async move {
                h.sleep(SimDuration::from_micros(10)).await;
                let t0 = h.now();
                for _ in 0..20 {
                    qa.write(MemTarget::Pm(0), Payload::synthetic(1024, 0))
                        .await
                        .unwrap();
                }
                h.now() - t0
            })
        };
        let idle = run(false);
        let busy = run(true);
        assert!(
            busy.as_nanos() > idle.as_nanos() * 3 / 2,
            "busy {busy} vs idle {idle}"
        );
    }

    #[test]
    fn degraded_ingress_slows_writes_until_restored() {
        let run = |degrade: bool| {
            let mut sim = Sim::new(5);
            let (f, a, b) = two_node_fabric(&sim);
            if degrade {
                f.degrade_ingress(b, 8.0);
            }
            let (qa, _qb) = f.connect(a, b, QpMode::Rc);
            let h = sim.handle();
            sim.block_on(async move {
                let t0 = h.now();
                for _ in 0..10 {
                    qa.write(MemTarget::Pm(0), Payload::synthetic(8192, 0))
                        .await
                        .unwrap();
                }
                h.now() - t0
            })
        };
        let healthy = run(false);
        let degraded = run(true);
        assert!(
            degraded.as_nanos() > healthy.as_nanos() * 3 / 2,
            "degraded {degraded} vs healthy {healthy}"
        );
    }

    #[test]
    #[should_panic(expected = "no loopback")]
    fn loopback_link_rejected() {
        let sim = Sim::new(1);
        let (f, a, _b) = two_node_fabric(&sim);
        f.link(a, a);
    }
}
