//! Per-system behavioural tests: each baseline's distinguishing protocol
//! feature must be visible in its timing/behaviour.

use prdma::{Request, ServerProfile};
use prdma_baselines::{build_system, SystemKind, SystemOpts};
use prdma_node::{Cluster, ClusterConfig};
use prdma_rnic::Payload;
use prdma_simnet::{Sim, SimDuration};

fn one_put_latency(kind: SystemKind, size: u64) -> SimDuration {
    let mut sim = Sim::new(31);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
    let opts = SystemOpts::for_object_size(size, ServerProfile::light());
    let client = build_system(&cluster, kind, 1, 0, 0, &opts);
    let h = sim.handle();
    sim.block_on(async move {
        // Warm one op (ScaleRPC's first op is a warm-up).
        client
            .call(Request::Put {
                obj: 0,
                data: Payload::synthetic(size, 0),
            })
            .await
            .unwrap();
        let t0 = h.now();
        client
            .call(Request::Put {
                obj: 1,
                data: Payload::synthetic(size, 1),
            })
            .await
            .unwrap();
        h.now() - t0
    })
}

/// L5 posts two writes (data + flag); its put must cost more than FaRM's
/// single write but far less than two full round trips.
#[test]
fn l5_pays_for_the_flag_write() {
    let farm = one_put_latency(SystemKind::Farm, 1024);
    let l5 = one_put_latency(SystemKind::L5, 1024);
    assert!(l5 > farm, "L5 {l5} must exceed FaRM {farm}");
    assert!(
        l5.as_nanos() < farm.as_nanos() * 2,
        "L5 {l5} should not double FaRM {farm}"
    );
}

/// LITE is Octopus plus kernel overhead on both sides.
#[test]
fn lite_slower_than_octopus_by_kernel_overhead() {
    let octopus = one_put_latency(SystemKind::Octopus, 1024);
    let lite = one_put_latency(SystemKind::Lite, 1024);
    let delta = lite.saturating_sub(octopus);
    // Two kernel traps of 1.2us each.
    assert!(
        (2_000..3_500).contains(&delta.as_nanos()),
        "LITE-Octopus delta {delta}"
    );
}

/// RFP's result-fetch polling makes its latency quantized by the poll
/// interval and strictly above FaRM's push-based reply.
#[test]
fn rfp_fetch_costs_more_than_push() {
    let farm = one_put_latency(SystemKind::Farm, 1024);
    let rfp = one_put_latency(SystemKind::Rfp, 1024);
    assert!(rfp > farm, "RFP {rfp} must exceed FaRM {farm}");
}

/// ScaleRPC's warm-up op (every 100th call) is costlier than its
/// process-phase ops.
#[test]
fn scalerpc_warmup_periodicity() {
    let mut sim = Sim::new(5);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
    let opts = SystemOpts::for_object_size(4096, ServerProfile::light());
    let client = build_system(&cluster, SystemKind::ScaleRpc, 1, 0, 0, &opts);
    let h = sim.handle();
    let lat: Vec<u64> = sim.block_on(async move {
        let mut lat = Vec::new();
        for i in 0..120u64 {
            let t0 = h.now();
            client
                .call(Request::Put {
                    obj: i,
                    data: Payload::synthetic(4096, i),
                })
                .await
                .unwrap();
            lat.push((h.now() - t0).as_nanos());
        }
        lat
    });
    // Ops 0 and 100 are warm-ups: costlier than their neighbours.
    assert!(lat[0] > lat[1], "eager warm-up: {} !> {}", lat[0], lat[1]);
    assert!(
        lat[100] > lat[99],
        "periodic warm-up: {} !> {}",
        lat[100],
        lat[99]
    );
    assert!(lat[100] > lat[101]);
}

/// Herd fragments large UD replies at the MTU; a 16 KB get takes more
/// reply messages (and so more time) than FaRM's single write-back.
#[test]
fn herd_fragments_large_replies() {
    let get_latency = |kind: SystemKind| {
        let mut sim = Sim::new(6);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
        let opts = SystemOpts::for_object_size(16384, ServerProfile::light());
        let client = build_system(&cluster, kind, 1, 0, 0, &opts);
        let h = sim.handle();
        sim.block_on(async move {
            client
                .call(Request::Put {
                    obj: 0,
                    data: Payload::synthetic(16384, 0),
                })
                .await
                .unwrap();
            let t0 = h.now();
            client
                .call(Request::Get { obj: 0, len: 16384 })
                .await
                .unwrap();
            h.now() - t0
        })
    };
    let farm = get_latency(SystemKind::Farm);
    let herd = get_latency(SystemKind::Herd);
    assert!(herd > farm, "Herd {herd} must exceed FaRM {farm} at 16KB");
}

/// Heavy-load baselines couple completion to processing: their put takes
/// at least the injected 100us; ours does not (sanity cross-check).
#[test]
fn baselines_couple_processing_to_completion() {
    for kind in [SystemKind::Farm, SystemKind::Darpc, SystemKind::Octopus] {
        let mut sim = Sim::new(8);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
        let opts = SystemOpts::for_object_size(1024, ServerProfile::heavy());
        let client = build_system(&cluster, kind, 1, 0, 0, &opts);
        let h = sim.handle();
        let t = sim.block_on(async move {
            let t0 = h.now();
            client
                .call(Request::Put {
                    obj: 0,
                    data: Payload::synthetic(1024, 0),
                })
                .await
                .unwrap();
            h.now() - t0
        });
        assert!(
            t.as_nanos() >= 100_000,
            "{kind:?} completed in {t}, below the injected processing"
        );
    }
}

/// DaRPC batching overlaps server work with later sends: total time for a
/// batch of 4 must undercut 4 sequential calls.
#[test]
fn darpc_batching_helps_but_less_than_ours() {
    let total = |kind: SystemKind, k: usize| {
        let mut sim = Sim::new(9);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
        let opts = SystemOpts::for_object_size(1024, ServerProfile::light());
        let client = build_system(&cluster, kind, 1, 0, 0, &opts);
        let h = sim.handle();
        sim.block_on(async move {
            let t0 = h.now();
            let mut i = 0u64;
            while i < 64 {
                let reqs = (0..k as u64)
                    .map(|j| Request::Put {
                        obj: i + j,
                        data: Payload::synthetic(1024, i + j),
                    })
                    .collect();
                client.call_batch(reqs).await.unwrap();
                i += k as u64;
            }
            (h.now() - t0).as_nanos() as f64
        })
    };
    let darpc_gain = total(SystemKind::Darpc, 1) / total(SystemKind::Darpc, 8);
    let wflush_gain = total(SystemKind::WFlush, 1) / total(SystemKind::WFlush, 8);
    assert!(darpc_gain > 1.05, "DaRPC batching gain {darpc_gain:.2}");
    assert!(
        wflush_gain > darpc_gain,
        "paper Fig 19: WFlush batching gain {wflush_gain:.2} must exceed DaRPC {darpc_gain:.2}"
    );
}

/// On a lossy fabric, reliable-connection systems and the retry-capable
/// unreliable ones all finish the workload; losses only cost time.
#[test]
fn lossy_fabric_is_survivable() {
    use prdma_rnic::RnicConfig;
    for kind in [
        SystemKind::WFlush,
        SystemKind::Farm,
        SystemKind::Darpc,
        SystemKind::Fasst,
        SystemKind::Herd,
    ] {
        let mut sim = Sim::new(404);
        let mut cfg = ClusterConfig::with_nodes(2);
        cfg.rnic = RnicConfig::with_loss(0.05);
        let cluster = Cluster::new(sim.handle(), cfg);
        let opts = SystemOpts::for_object_size(1024, ServerProfile::light());
        let client = build_system(&cluster, kind, 1, 0, 0, &opts);
        let done = sim.block_on(async move {
            let mut ok = 0;
            for i in 0..60u64 {
                let req = if i % 2 == 0 {
                    Request::Put {
                        obj: i,
                        data: Payload::synthetic(1024, i),
                    }
                } else {
                    Request::Get {
                        obj: i - 1,
                        len: 1024,
                    }
                };
                if client.call(req).await.is_ok() {
                    ok += 1;
                }
            }
            ok
        });
        assert_eq!(done, 60, "{kind:?} lost operations on a lossy fabric");
    }
}

/// Losses slow a reliable-connection workload down but never corrupt it.
#[test]
fn rc_loss_costs_time_not_correctness() {
    let run = |loss: f64| {
        let mut sim = Sim::new(405);
        let mut cfg = prdma_node::ClusterConfig::with_nodes(2);
        cfg.rnic = prdma_rnic::RnicConfig::with_loss(loss);
        let cluster = prdma_node::Cluster::new(sim.handle(), cfg);
        let opts = SystemOpts::for_object_size(1024, ServerProfile::light());
        let client = build_system(&cluster, SystemKind::WFlush, 1, 0, 0, &opts);
        let pm = cluster.node(0).pm.clone();
        let h = sim.handle();
        let t = sim.block_on(async move {
            for i in 0..40u64 {
                client
                    .call(Request::Put {
                        obj: i,
                        data: prdma_rnic::Payload::from_bytes(vec![i as u8 + 1; 128]),
                    })
                    .await
                    .unwrap();
            }
            h.now()
        });
        sim.run();
        let region = cluster.node(0).alloc.lookup("objects").unwrap();
        for i in 0..40u64 {
            let got = pm.read_persistent_view(region.offset + i * 1024, 128);
            assert_eq!(
                got,
                vec![i as u8 + 1; 128],
                "object {i} corrupt at loss {loss}"
            );
        }
        t
    };
    let clean = run(0.0);
    let lossy = run(0.10);
    assert!(lossy > clean, "losses must cost time: {lossy} !> {clean}");
}
