//! L5 [Fent et al., ICDE '20] — two RC writes (data, then a validity
//! flag) into a polled buffer; the server returns the result with another
//! write (paper Fig. 2e).

use prdma::{Request, Response, RpcClient, RpcFuture, ServerProfile};
use prdma_node::{Cluster, Node};
use prdma_rnic::{MemTarget, Payload, QpMode};

use crate::common::{
    journaled_call, qp_pair, reply_by_write, request_image, request_parts, QpPair, ServerCtx,
    SLOT_PITCH,
};

/// Offset of the validity flag within the lane's message slot.
const FLAG_OFF: u64 = SLOT_PITCH - 8;

/// L5 client endpoint.
pub struct L5Client {
    ctx: ServerCtx,
    qp: QpPair,
    client_node: Node,
}

/// Build an L5 connection.
pub fn build_l5(
    cluster: &Cluster,
    client_idx: usize,
    server_idx: usize,
    lane: usize,
    profile: ServerProfile,
    object_slot: u64,
    store_capacity: u64,
) -> L5Client {
    L5Client {
        ctx: ServerCtx::new(
            cluster,
            server_idx,
            lane,
            profile,
            object_slot,
            store_capacity,
        ),
        qp: qp_pair(cluster, client_idx, server_idx, QpMode::Rc, QpMode::Rc),
        client_node: cluster.node(client_idx).clone(),
    }
}

impl L5Client {
    async fn roundtrip(&self, req: Request) -> prdma::RpcResult<Response> {
        let (is_put, obj, len, count, data) = request_parts(&req);
        let slot = self.ctx.req_slot();

        // Write #1: the data. Write #2: the validity flag the server polls.
        let tok_data = self
            .qp
            .fwd
            .write(MemTarget::Dram(slot), request_image(&req))
            .await?;
        let tok_flag = self
            .qp
            .fwd
            .write(MemTarget::Dram(slot + FLAG_OFF), Payload::synthetic(8, 1))
            .await?;
        // The server acts when it sees the flag — and the data must have
        // landed too (RC ordering is approximated by awaiting both DMAs).
        tok_data.wait().await;
        tok_flag.wait().await;
        self.ctx.node.cpu.poll_dispatch().await;

        let (payload, resp_len) = if is_put {
            self.ctx.handle_put(obj, data.as_ref().expect("put")).await;
            (None, 8)
        } else {
            let p = self.ctx.handle_get(obj, len, count).await;
            let l = p.len();
            (Some(p), l)
        };

        reply_by_write(&self.qp.rev, &self.client_node, resp_len).await?;
        Ok(Response {
            payload,
            durable: true,
        })
    }
}

impl RpcClient for L5Client {
    fn call(&self, req: Request) -> RpcFuture<'_> {
        let bytes = request_image(&req).len();
        Box::pin(journaled_call(
            &self.client_node,
            bytes,
            self.roundtrip(req),
        ))
    }

    fn name(&self) -> &'static str {
        "L5"
    }
}
