//! DaRPC [Stuedi et al., SoCC '14] — classic two-sided RPC over RC
//! send/recv (paper Fig. 2a).
//!
//! The client sends a message (data + metadata); the server's CPU is
//! interrupted to parse it, copies the data to the target memory, persists
//! it, runs the RPC, and replies with another send. Persistence is
//! implied by the RPC completion — and therefore arrives late.

use prdma::ServerProfile;
use prdma::{Request, Response, RpcClient, RpcFuture};
use prdma_node::{Cluster, Node};
use prdma_rnic::{MemTarget, Payload, QpMode};

use crate::common::{
    journaled_call, qp_pair, reply_by_send, request_image, request_parts, QpPair, ServerCtx,
};

/// DaRPC client endpoint (the server side is modeled inline).
pub struct DarpcClient {
    ctx: ServerCtx,
    qp: QpPair,
    client_node: Node,
}

/// Build a DaRPC connection.
pub fn build_darpc(
    cluster: &Cluster,
    client_idx: usize,
    server_idx: usize,
    lane: usize,
    profile: ServerProfile,
    object_slot: u64,
    store_capacity: u64,
) -> DarpcClient {
    let ctx = ServerCtx::new(
        cluster,
        server_idx,
        lane,
        profile,
        object_slot,
        store_capacity,
    );
    let qp = qp_pair(cluster, client_idx, server_idx, QpMode::Rc, QpMode::Rc);
    DarpcClient {
        ctx,
        qp,
        client_node: cluster.node(client_idx).clone(),
    }
}

impl DarpcClient {
    async fn roundtrip(&self, req: Request) -> prdma::RpcResult<Response> {
        let (is_put, obj, len, count, data) = request_parts(&req);
        let image = request_image(&req);

        // Two-sided in: server posts a recv into its message buffer.
        // Two-sided send: stage the message into a registered send buffer.
        self.client_node.cpu.memcpy(image.len()).await;
        self.qp
            .fwd_server
            .post_recv(MemTarget::Dram(self.ctx.req_slot()));
        self.qp.fwd.send(image).await?;
        let _c = self.qp.fwd_server.recv().await;

        // Server software: parse, copy, persist, process.
        self.ctx.node.cpu.parse_request().await;
        let (payload, resp_len) = if is_put {
            self.ctx
                .handle_put(obj, data.as_ref().expect("put data"))
                .await;
            (None, 8)
        } else {
            let p = self.ctx.handle_get(obj, len, count).await;
            let l = p.len();
            (Some(p), l)
        };

        // Two-sided reply.
        let _delivered = reply_by_send(
            &self.qp.rev,
            &self.qp.rev_client,
            &self.client_node,
            resp_len,
        )
        .await?;
        Ok(Response {
            payload,
            durable: true,
        })
    }

    /// Batched calls (Fig. 19 / paper Section 4.3): multiple RDMA
    /// requests are combined into **one RPC** — a single send carrying
    /// all payloads, one parse/persist pass at the server, one reply.
    /// The send-side staging memcpy still scales with the batched bytes,
    /// which is why the paper finds DaRPC's batching gains modest.
    pub async fn call_batch(&self, reqs: Vec<Request>) -> prdma::RpcResult<Vec<Response>> {
        if reqs.len() <= 1 {
            let mut out = Vec::new();
            for r in reqs {
                out.push(self.roundtrip(r).await?);
            }
            return Ok(out);
        }
        // Stage every message, doorbell-post the sends (coalesced ACK),
        // then the server consumes them one by one: each message still
        // pays its recv-WQE fetch, CQ dispatch, and parse — the send-side
        // software costs the paper identifies as limiting DaRPC's gains.
        let images: Vec<Payload> = reqs.iter().map(request_image).collect();
        let total: u64 = images.iter().map(Payload::len).sum();
        self.client_node.cpu.memcpy(total).await;
        for _ in 0..images.len() {
            self.qp
                .fwd_server
                .post_recv(MemTarget::Dram(self.ctx.req_slot()));
        }
        self.qp.fwd.send_batch(images).await?;
        let mut out = Vec::with_capacity(reqs.len());
        for req in &reqs {
            let _c = self.qp.fwd_server.recv().await;
            self.ctx.node.cpu.parse_request().await;
            let (is_put, obj, len, count, data) = request_parts(req);
            let (payload, resp_len) = if is_put {
                self.ctx.handle_put(obj, data.as_ref().unwrap()).await;
                (None, 8)
            } else {
                let p = self.ctx.handle_get(obj, len, count).await;
                let l = p.len();
                (Some(p), l)
            };
            // Persistence is coupled to RPC completion here, so every
            // request still needs its own completion reply — unlike the
            // durable RPCs, whose single flush covers the whole batch.
            let _ = reply_by_send(
                &self.qp.rev,
                &self.qp.rev_client,
                &self.client_node,
                resp_len,
            )
            .await?;
            out.push(Response {
                payload,
                durable: true,
            });
        }
        Ok(out)
    }
}

impl RpcClient for DarpcClient {
    fn call(&self, req: Request) -> RpcFuture<'_> {
        let bytes = request_image(&req).len();
        Box::pin(journaled_call(
            &self.client_node,
            bytes,
            self.roundtrip(req),
        ))
    }

    fn call_batch(&self, reqs: Vec<Request>) -> prdma::RpcBatchFuture<'_> {
        Box::pin(self.call_batch(reqs))
    }

    fn name(&self) -> &'static str {
        "DaRPC"
    }
}
