//! # prdma-baselines
//!
//! The nine state-of-the-art RDMA RPC systems the SC '21 paper compares
//! against (Table 1, Fig. 2), re-implemented on the PRDMA-RS substrate:
//! DaRPC, FaRM, Herd, FaSST, L5, RFP, ScaleRPC, Octopus, and LITE.
//!
//! Each system reproduces the *protocol schedule* that determines its
//! performance: which verbs carry requests and replies, who polls or gets
//! interrupted, and — crucially — that **persistence is coupled to RPC
//! completion**: the client learns its data is durable only after the
//! server has parsed, copied, persisted, processed, and replied. The
//! paper's durable RPCs (in the `prdma` crate) break exactly this
//! coupling.
//!
//! The [`SystemKind`] registry builds any of the thirteen systems behind
//! the common [`prdma::RpcClient`] interface.

#![warn(missing_docs)]

pub mod common;
mod darpc;
mod farm;
mod fasst;
mod herd;
mod l5;
mod octopus;
mod registry;
mod rfp;
mod scalerpc;

pub use darpc::{build_darpc, DarpcClient};
pub use farm::{build_farm, FarmClient};
pub use fasst::{build_fasst, FasstClient};
pub use herd::{build_herd, HerdClient};
pub use l5::{build_l5, L5Client};
pub use octopus::{build_lite, build_octopus, OctopusClient};
pub use registry::{build_sharded_system, build_system, SystemKind, SystemOpts};
pub use rfp::{build_rfp, RfpClient};
pub use scalerpc::{build_scalerpc, ScaleRpcClient};

#[cfg(test)]
mod tests {
    use super::*;
    use prdma::{Request, ServerProfile};
    use prdma_node::{Cluster, ClusterConfig};
    use prdma_rnic::Payload;
    use prdma_simnet::{Sim, SimTime};

    fn run_ops(kind: SystemKind, profile: ServerProfile, size: u64, ops: u64) -> SimTime {
        let mut sim = Sim::new(17);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
        let opts = SystemOpts::for_object_size(size, profile);
        let client = build_system(&cluster, kind, 1, 0, 0, &opts);
        let h = sim.handle();
        sim.block_on(async move {
            for i in 0..ops {
                let req = if i % 2 == 0 {
                    Request::Put {
                        obj: i,
                        data: Payload::synthetic(size, i),
                    }
                } else {
                    Request::Get {
                        obj: i - 1,
                        len: size,
                    }
                };
                client.call(req).await.unwrap();
            }
            h.now()
        })
    }

    #[test]
    fn every_evaluated_system_completes_a_mixed_workload() {
        for kind in SystemKind::PAPER_EVAL {
            let t = run_ops(kind, ServerProfile::light(), 1024, 10);
            assert!(t > SimTime::ZERO, "{kind:?} did no simulated work");
        }
    }

    #[test]
    fn table1_only_systems_work_too() {
        for kind in [SystemKind::Herd, SystemKind::Lite] {
            let t = run_ops(kind, ServerProfile::light(), 1024, 6);
            assert!(t > SimTime::ZERO, "{kind:?}");
        }
    }

    #[test]
    fn baseline_put_persists_real_bytes() {
        for kind in [
            SystemKind::Darpc,
            SystemKind::Farm,
            SystemKind::L5,
            SystemKind::Octopus,
        ] {
            let mut sim = Sim::new(3);
            let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
            let opts = SystemOpts::for_object_size(4096, ServerProfile::light());
            let client = build_system(&cluster, kind, 1, 0, 0, &opts);
            let pm = cluster.node(0).pm.clone();
            sim.block_on(async move {
                client
                    .call(Request::Put {
                        obj: 2,
                        data: Payload::from_bytes(vec![0x7E; 128]),
                    })
                    .await
                    .unwrap();
            });
            // The object store is the first PM allocation; slot 2 of 4096.
            let region = cluster.node(0).alloc.lookup("objects").unwrap();
            let got = pm.read_persistent_view(region.offset + 2 * 4096, 128);
            assert_eq!(got, vec![0x7E; 128], "{kind:?}");
        }
    }

    #[test]
    fn fasst_rejects_large_objects() {
        let mut sim = Sim::new(3);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
        let opts = SystemOpts::for_object_size(65536, ServerProfile::light());
        let client = build_system(&cluster, SystemKind::Fasst, 1, 0, 0, &opts);
        let err = sim.block_on(async move {
            client
                .call(Request::Put {
                    obj: 0,
                    data: Payload::synthetic(65536, 0),
                })
                .await
                .err()
                .unwrap()
        });
        assert!(matches!(err, prdma::RpcError::Unsupported(_)));
    }

    #[test]
    fn durable_rpcs_beat_their_family_under_heavy_load() {
        // The paper's headline: with 100us processing, durable RPC puts
        // decouple from processing and complete much faster.
        let ops = 20;
        let t_wflush = run_ops(SystemKind::WFlush, ServerProfile::heavy(), 1024, ops);
        let t_farm = run_ops(SystemKind::Farm, ServerProfile::heavy(), 1024, ops);
        assert!(
            t_wflush < t_farm,
            "WFlush {t_wflush} !< FaRM {t_farm} under heavy load"
        );
        let t_sflush = run_ops(SystemKind::SFlush, ServerProfile::heavy(), 1024, ops);
        let t_darpc = run_ops(SystemKind::Darpc, ServerProfile::heavy(), 1024, ops);
        assert!(
            t_sflush < t_darpc,
            "SFlush {t_sflush} !< DaRPC {t_darpc} under heavy load"
        );
    }

    /// Build a 2-node cluster with `rate` injected packet loss on the
    /// given node's NIC (loss applies to messages *towards* that node,
    /// UC/UD only — RC retransmits in hardware).
    fn lossy_setup(
        seed: u64,
        kind: SystemKind,
        size: u64,
        loss: &[(usize, f64)],
    ) -> (Sim, Box<dyn prdma::RpcClient>, Cluster) {
        let sim = Sim::new(seed);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
        let forever = SimTime::from_nanos(u64::MAX / 2);
        for &(node, rate) in loss {
            cluster.node(node).rnic().inject_loss(rate, forever);
        }
        let opts = SystemOpts::for_object_size(size, ServerProfile::light());
        let client = build_system(&cluster, kind, 1, 0, 0, &opts);
        (sim, client, cluster)
    }

    #[test]
    fn herd_and_fasst_ride_out_moderate_loss() {
        // 15% loss on both NICs: Herd loses UC requests (server side) and
        // UD reply fragments (client side); FaSST loses UD both ways.
        // Every op must still complete via the systems' own retries.
        for kind in [SystemKind::Herd, SystemKind::Fasst] {
            let (mut sim, client, cluster) = lossy_setup(23, kind, 512, &[(0, 0.15), (1, 0.15)]);
            let pm = cluster.node(0).pm.clone();
            sim.block_on(async move {
                for i in 0..20u64 {
                    let req = if i % 2 == 0 {
                        Request::Put {
                            obj: i % 4,
                            data: Payload::from_bytes(vec![0x40 + i as u8; 64]),
                        }
                    } else {
                        Request::Get {
                            obj: i % 4,
                            len: 64,
                        }
                    };
                    client.call(req).await.unwrap_or_else(|e| {
                        panic!("{kind:?} op {i} failed under moderate loss: {e}")
                    });
                }
            });
            // The last put's real bytes landed despite the lossy wire.
            let region = cluster.node(0).alloc.lookup("objects").unwrap();
            let got = pm.read_persistent_view(region.offset + 2 * 512, 64);
            assert_eq!(got, vec![0x40 + 18; 64], "{kind:?}");
        }
    }

    #[test]
    fn herd_total_reply_loss_errors_instead_of_hanging() {
        // Replies towards the client always drop: the reply-fragment loop
        // must give up with TimedOut, not spin forever.
        let (mut sim, client, _cluster) = lossy_setup(29, SystemKind::Herd, 512, &[(1, 1.0)]);
        let err = sim.block_on(async move {
            client
                .call(Request::Get { obj: 0, len: 64 })
                .await
                .expect_err("total reply loss cannot succeed")
        });
        assert_eq!(err, prdma::RpcError::TimedOut);
    }

    #[test]
    fn fasst_total_request_loss_times_out() {
        // Requests towards the server always drop: FaSST's bounded retry
        // must surface TimedOut (a *failure*, not an unsupported shape).
        let (mut sim, client, _cluster) = lossy_setup(31, SystemKind::Fasst, 512, &[(0, 1.0)]);
        let err = sim.block_on(async move {
            client
                .call(Request::Get { obj: 0, len: 64 })
                .await
                .expect_err("total request loss cannot succeed")
        });
        assert_eq!(err, prdma::RpcError::TimedOut);
    }

    #[test]
    fn scalerpc_is_unaffected_by_datagram_loss() {
        // ScaleRPC runs RC in both directions: injected datagram loss
        // costs at most hardware retransmits, never a failed op.
        let (mut sim, client, _cluster) =
            lossy_setup(37, SystemKind::ScaleRpc, 512, &[(0, 0.9), (1, 0.9)]);
        sim.block_on(async move {
            for i in 0..10u64 {
                let req = if i % 2 == 0 {
                    Request::Put {
                        obj: i,
                        data: Payload::synthetic(512, i),
                    }
                } else {
                    Request::Get {
                        obj: i - 1,
                        len: 512,
                    }
                };
                client.call(req).await.expect("RC rides out loss");
            }
        });
    }

    #[test]
    fn darpc_rtt_roughly_double_farm_small_objects() {
        // Fig 20: two-sided DaRPC pays ~2x the effective RTT of FaRM.
        let t_darpc = run_ops(SystemKind::Darpc, ServerProfile::light(), 64, 10);
        let t_farm = run_ops(SystemKind::Farm, ServerProfile::light(), 64, 10);
        let ratio = t_darpc.as_nanos() as f64 / t_farm.as_nanos() as f64;
        assert!(
            (1.1..3.5).contains(&ratio),
            "DaRPC/FaRM ratio {ratio} out of band"
        );
    }
}
