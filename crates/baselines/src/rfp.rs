//! RFP [Su et al., EuroSys '17] — "remote fetching paradigm": the client
//! writes the request with RDMA write, the server processes it, and the
//! client *fetches* the result by repeatedly issuing one-sided RDMA reads
//! until it observes the result flag (paper Fig. 2f).

use std::cell::Cell;
use std::rc::Rc;

use prdma::{Request, Response, RpcClient, RpcFuture, ServerProfile};
use prdma_node::{Cluster, Node};
use prdma_rnic::{MemTarget, QpMode};
use prdma_simnet::SimDuration;

use crate::common::{
    journaled_call, qp_pair, request_image, request_parts, QpPair, ServerCtx, SLOT_PITCH,
};

/// Offset of the result buffer within the lane's slot.
const RESULT_OFF: u64 = SLOT_PITCH / 2;

/// Interval between the client's polling reads.
const POLL_INTERVAL: SimDuration = SimDuration::from_micros(1);

/// RFP client endpoint.
pub struct RfpClient {
    ctx: Rc<ServerCtx>,
    qp: QpPair,
    client_node: Node,
}

/// Build an RFP connection.
pub fn build_rfp(
    cluster: &Cluster,
    client_idx: usize,
    server_idx: usize,
    lane: usize,
    profile: ServerProfile,
    object_slot: u64,
    store_capacity: u64,
) -> RfpClient {
    RfpClient {
        ctx: Rc::new(ServerCtx::new(
            cluster,
            server_idx,
            lane,
            profile,
            object_slot,
            store_capacity,
        )),
        qp: qp_pair(cluster, client_idx, server_idx, QpMode::Rc, QpMode::Rc),
        client_node: cluster.node(client_idx).clone(),
    }
}

impl RfpClient {
    async fn roundtrip(&self, req: Request) -> prdma::RpcResult<Response> {
        let (is_put, obj, len, count, data) = request_parts(&req);
        let slot = self.ctx.req_slot();

        // Request in by RDMA write.
        let tok = self
            .qp
            .fwd
            .write(MemTarget::Dram(slot), request_image(&req))
            .await?;

        // Server-side work runs concurrently with the client's fetch loop.
        let done = Rc::new(Cell::new(false));
        let resp_len = Rc::new(Cell::new(0u64));
        {
            let ctx = Rc::clone(&self.ctx);
            let done = Rc::clone(&done);
            let resp_len = Rc::clone(&resp_len);
            let h = self.qp.fwd.local().handle().clone();
            h.spawn(async move {
                tok.wait().await;
                ctx.node.cpu.poll_dispatch().await;
                if is_put {
                    ctx.handle_put(obj, data.as_ref().expect("put")).await;
                    resp_len.set(8);
                } else {
                    let p = ctx.handle_get(obj, len, count).await;
                    resp_len.set(p.len());
                }
                // The server publishes the result in its own memory; the
                // local store is instantaneous (DRAM).
                done.set(true);
            });
        }

        // Fetch loop: poll the result flag with one-sided reads. A read
        // can only observe the flag as of when it was *issued* — a flag
        // set while the read is in flight needs one more read to be seen.
        let h = self.qp.fwd.local().handle().clone();
        loop {
            let observable = done.get();
            self.qp
                .fwd
                .read_synthetic(MemTarget::Dram(slot + RESULT_OFF), 8)
                .await?;
            if observable {
                break;
            }
            h.sleep(POLL_INTERVAL).await;
        }
        // One more read to fetch the payload itself.
        let rlen = resp_len.get();
        if rlen > 8 {
            self.qp
                .fwd
                .read_synthetic(MemTarget::Dram(slot + RESULT_OFF), rlen)
                .await?;
        }
        // Parse the fetched result.
        self.client_node.cpu.poll_dispatch().await;
        let payload = if is_put {
            None
        } else {
            Some(prdma_rnic::Payload::synthetic(rlen, obj))
        };
        Ok(Response {
            payload,
            durable: true,
        })
    }
}

impl RpcClient for RfpClient {
    fn call(&self, req: Request) -> RpcFuture<'_> {
        let bytes = request_image(&req).len();
        Box::pin(journaled_call(
            &self.client_node,
            bytes,
            self.roundtrip(req),
        ))
    }

    fn name(&self) -> &'static str {
        "RFP"
    }
}
