//! ScaleRPC [Chen et al., EuroSys '19] — connection grouping with a
//! warm-up phase: the client first sends only the *address* of its data;
//! the server fetches it with an RDMA read, then the connection enters the
//! process phase where data flows like FaRM (paper Fig. 2g). The paper
//! interleaves one warm-up with every 100 process-phase calls.

use std::cell::Cell;

use prdma::{Request, Response, RpcClient, RpcFuture, ServerProfile};
use prdma_node::{Cluster, Node};
use prdma_rnic::{MemTarget, Payload, QpMode};

use crate::common::{
    journaled_call, qp_pair, reply_by_write, request_image, request_parts, QpPair, ServerCtx,
    MSG_HEADER,
};

/// Process-phase calls between warm-ups (paper Section 5.1).
const WARMUP_PERIOD: u64 = 100;

/// Client-side staging area the server reads from during warm-up.
const CLIENT_DATA_ADDR: u64 = 4096;

/// ScaleRPC client endpoint.
pub struct ScaleRpcClient {
    ctx: ServerCtx,
    qp: QpPair,
    client_node: Node,
    calls: Cell<u64>,
}

/// Build a ScaleRPC connection.
pub fn build_scalerpc(
    cluster: &Cluster,
    client_idx: usize,
    server_idx: usize,
    lane: usize,
    profile: ServerProfile,
    object_slot: u64,
    store_capacity: u64,
) -> ScaleRpcClient {
    ScaleRpcClient {
        ctx: ServerCtx::new(
            cluster,
            server_idx,
            lane,
            profile,
            object_slot,
            store_capacity,
        ),
        qp: qp_pair(cluster, client_idx, server_idx, QpMode::Rc, QpMode::Rc),
        client_node: cluster.node(client_idx).clone(),
        calls: Cell::new(0),
    }
}

impl ScaleRpcClient {
    async fn roundtrip(&self, req: Request) -> prdma::RpcResult<Response> {
        let n = self.calls.get();
        self.calls.set(n + 1);
        let warmup = n.is_multiple_of(WARMUP_PERIOD);
        let (is_put, obj, len, count, data) = request_parts(&req);
        let slot = self.ctx.req_slot();

        if warmup {
            // Warm-up: write only the local address of the data; the
            // server pulls the payload with a one-sided read.
            let tok = self
                .qp
                .fwd
                .write(MemTarget::Dram(slot), Payload::synthetic(MSG_HEADER, 0))
                .await?;
            tok.wait().await;
            self.ctx.node.cpu.poll_dispatch().await;
            self.qp
                .rev
                .read_synthetic(
                    MemTarget::Dram(CLIENT_DATA_ADDR),
                    MSG_HEADER + req.transfer_len().min(1 << 20),
                )
                .await?;
        } else {
            // Process phase: FaRM-style direct write.
            let tok = self
                .qp
                .fwd
                .write(MemTarget::Dram(slot), request_image(&req))
                .await?;
            tok.wait().await;
            self.ctx.node.cpu.poll_dispatch().await;
        }

        let (payload, resp_len) = if is_put {
            self.ctx.handle_put(obj, data.as_ref().expect("put")).await;
            (None, 8)
        } else {
            let p = self.ctx.handle_get(obj, len, count).await;
            let l = p.len();
            (Some(p), l)
        };

        reply_by_write(&self.qp.rev, &self.client_node, resp_len).await?;
        Ok(Response {
            payload,
            durable: true,
        })
    }

    /// Batched calls (Fig. 19 / paper Section 4.3): multiple requests
    /// combined into one RPC — a single RDMA write carrying all payloads
    /// into the message ring, one poll, one persist pass, one reply.
    pub async fn call_batch(&self, reqs: Vec<Request>) -> prdma::RpcResult<Vec<Response>> {
        if reqs.len() <= 1 {
            let mut out = Vec::new();
            for r in reqs {
                out.push(self.roundtrip(r).await?);
            }
            return Ok(out);
        }
        self.calls.set(self.calls.get() + reqs.len() as u64);
        // Doorbell-batched writes into the message ring; the server polls
        // each message, and — persistence being coupled to completion —
        // still replies per request.
        let items = reqs
            .iter()
            .map(|r| (MemTarget::Dram(self.ctx.req_slot()), request_image(r)))
            .collect();
        let tokens = self.qp.fwd.write_batch(items).await?;
        let mut out = Vec::with_capacity(reqs.len());
        for (req, tok) in reqs.iter().zip(tokens) {
            tok.wait().await;
            self.ctx.node.cpu.poll_dispatch().await;
            let (is_put, obj, len, count, data) = request_parts(req);
            let (payload, resp_len) = if is_put {
                self.ctx.handle_put(obj, data.as_ref().unwrap()).await;
                (None, 8)
            } else {
                let p = self.ctx.handle_get(obj, len, count).await;
                let l = p.len();
                (Some(p), l)
            };
            reply_by_write(&self.qp.rev, &self.client_node, resp_len).await?;
            out.push(Response {
                payload,
                durable: true,
            });
        }
        Ok(out)
    }
}

impl RpcClient for ScaleRpcClient {
    fn call(&self, req: Request) -> RpcFuture<'_> {
        let bytes = request_image(&req).len();
        Box::pin(journaled_call(
            &self.client_node,
            bytes,
            self.roundtrip(req),
        ))
    }

    fn call_batch(&self, reqs: Vec<Request>) -> prdma::RpcBatchFuture<'_> {
        Box::pin(self.call_batch(reqs))
    }

    fn name(&self) -> &'static str {
        "ScaleRPC"
    }
}
