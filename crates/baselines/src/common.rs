//! Shared machinery for the nine baseline RPC systems (paper Table 1,
//! Fig. 2).
//!
//! Every baseline couples remote persistence to RPC completion: the client
//! gets no signal until the server has parsed the request, copied and
//! persisted the data, run the (possibly 100 µs) RPC processing, and sent
//! a reply. Because the client blocks for the full round trip, each
//! baseline's `call()` models the entire exchange inline — server-side
//! costs are charged against the *server's* CPU/PM/NIC resources, so
//! contention across concurrent clients is still captured.

use prdma::{ObjectStore, Request, Response, RpcError, RpcResult, ServerProfile};
use prdma_node::{Cluster, Node};
use prdma_rnic::{MemTarget, Payload, Qp, QpMode};
use prdma_simnet::journal::{EventKind, Subsystem, NO_ID};

/// Wire header bytes on every baseline request/response.
pub const MSG_HEADER: u64 = 32;

/// Per-lane message slot pitch in the server's DRAM ring (fits a 64 KB
/// object plus headers).
pub const SLOT_PITCH: u64 = 144 * 1024;

/// Client-side DRAM offsets.
pub const CLIENT_RESP_ADDR: u64 = 0;

/// Server-side endpoints and cost model shared by baseline
/// implementations.
pub struct ServerCtx {
    /// The server node (CPU, PM, DRAM).
    pub node: Node,
    /// The shared object store in the server's PM.
    pub store: ObjectStore,
    /// Load profile (processing time).
    pub profile: ServerProfile,
    /// This connection's lane (message-slot selector).
    pub lane: usize,
}

impl ServerCtx {
    /// Build (or join) the server context: allocates the shared object
    /// store on first use.
    pub fn new(
        cluster: &Cluster,
        server_idx: usize,
        lane: usize,
        profile: ServerProfile,
        object_slot: u64,
        store_capacity: u64,
    ) -> Self {
        let node = cluster.node(server_idx).clone();
        let region = match node.alloc.lookup("objects") {
            Some(r) => r,
            None => node
                .alloc
                .alloc("objects", store_capacity.min(node.alloc.remaining()), 64)
                .expect("PM too small for object store"),
        };
        let store = ObjectStore::new(node.pm.clone(), region, object_slot);
        ServerCtx {
            node,
            store,
            profile,
            lane,
        }
    }

    /// DRAM address of this lane's request message slot.
    pub fn req_slot(&self) -> u64 {
        self.lane as u64 * SLOT_PITCH
    }

    /// Server-side handling of a `Put`: copy out of the message buffer,
    /// persist into the PM store (durable before any reply — this is what
    /// makes every baseline a *durable* RPC), then the injected processing.
    pub async fn handle_put(&self, obj: u64, data: &Payload) {
        self.node.cpu.memcpy(data.len()).await;
        let _ = self.store.put(obj, data).await;
        self.process().await;
    }

    /// Server-side handling of a `Get`/`Scan`: processing + media reads.
    /// Returns the response payload.
    pub async fn handle_get(&self, obj: u64, len: u64, count: u32) -> Payload {
        self.process().await;
        let mut total = 0u64;
        for i in 0..count.max(1) as u64 {
            let p = self
                .store
                .get(obj + i, len)
                .await
                .unwrap_or(Payload::synthetic(0, 0));
            total += p.len();
        }
        Payload::synthetic(total, obj)
    }

    /// The injected RPC processing time (100 µs under the heavy profile).
    pub async fn process(&self) {
        if self.profile.processing_time > prdma_simnet::SimDuration::ZERO {
            self.node.cpu.compute(self.profile.processing_time).await;
        }
    }
}

/// The wire image of a request: a real-time header plus the data.
pub fn request_image(req: &Request) -> Payload {
    match req {
        Request::Put { data, .. } => {
            Payload::composite(vec![Payload::synthetic(MSG_HEADER, 0), data.clone()])
        }
        _ => Payload::synthetic(MSG_HEADER, 0),
    }
}

/// Decompose a request for server-side handling.
pub fn request_parts(req: &Request) -> (bool, u64, u64, u32, Option<Payload>) {
    match req {
        Request::Put { obj, data } => (true, *obj, data.len(), 1, Some(data.clone())),
        Request::Get { obj, len } => (false, *obj, *len, 1, None),
        Request::Scan { start, count, len } => (false, *start, *len, *count, None),
    }
}

/// Standard QP bundle used by most baselines: a client→server QP and a
/// server→client QP (the latter posts through the *server's* CPU).
pub struct QpPair {
    /// Client-side endpoint of the forward QP.
    pub fwd: Qp,
    /// Server-side endpoint of the forward QP (for `post_recv`/`recv`).
    pub fwd_server: Qp,
    /// Server-side endpoint of the reverse QP (server posts replies here).
    pub rev: Qp,
    /// Client-side endpoint of the reverse QP.
    pub rev_client: Qp,
}

/// Connect the standard pair with the given forward transport mode; the
/// reverse path uses `rev_mode`.
pub fn qp_pair(
    cluster: &Cluster,
    client_idx: usize,
    server_idx: usize,
    fwd_mode: QpMode,
    rev_mode: QpMode,
) -> QpPair {
    let (fwd, fwd_server) = cluster.connect(client_idx, server_idx, fwd_mode);
    let (rev, rev_client) = cluster.connect(server_idx, client_idx, rev_mode);
    QpPair {
        fwd,
        fwd_server,
        rev,
        rev_client,
    }
}

/// Model the client noticing a completion by polling its own memory.
pub async fn client_poll(node: &Node) {
    node.cpu.poll_dispatch().await;
}

/// Deliver a reply of `len` bytes by RDMA write into the client's response
/// buffer and wait until its DMA lands (the client polls its memory).
pub async fn reply_by_write(pair_rev: &Qp, client_node: &Node, len: u64) -> RpcResult<()> {
    let tok = pair_rev
        .write(
            MemTarget::Dram(CLIENT_RESP_ADDR),
            Payload::synthetic(MSG_HEADER + len, 0),
        )
        .await?;
    tok.wait().await;
    client_poll(client_node).await;
    Ok(())
}

/// Deliver a reply via two-sided send (the client posts a recv and blocks
/// on the completion). Returns whether the reply was actually delivered —
/// `false` only on lossy unreliable transports, where the caller should
/// retry the operation.
pub async fn reply_by_send(
    rev: &Qp,
    rev_client: &Qp,
    client_node: &Node,
    len: u64,
) -> RpcResult<bool> {
    rev_client.post_recv(MemTarget::Dram(CLIENT_RESP_ADDR));
    let tok = rev.send(Payload::synthetic(MSG_HEADER + len, 0)).await?;
    let outcome = tok.wait_outcome().await;
    let _ = rev_client.try_recv();
    if !outcome.delivered {
        return Ok(false);
    }
    // The client's recv path pays full two-sided dispatch, not a poll.
    client_node.cpu.parse_request().await;
    Ok(true)
}

/// Map an unexpected transport error into an RPC error (helper for
/// baseline implementations).
pub fn transport_err(e: prdma_rnic::RdmaError) -> RpcError {
    RpcError::from(e)
}

/// Journal the start of one baseline RPC on the client node: allocates an
/// rpc id and emits `RpcDispatch`. Returns [`NO_ID`] (and records nothing)
/// when journaling is disabled.
pub fn rpc_begin(client_node: &Node, bytes: u64) -> u64 {
    match client_node.journal() {
        Some(j) => {
            let id = j.next_rpc_id();
            j.record(Subsystem::Rpc, EventKind::RpcDispatch, id, NO_ID, bytes);
            id
        }
        None => NO_ID,
    }
}

/// Journal the completion of a baseline RPC begun with [`rpc_begin`].
pub fn rpc_end(client_node: &Node, rpc_id: u64, bytes: u64) {
    if rpc_id == NO_ID {
        return;
    }
    if let Some(j) = client_node.journal() {
        j.record(Subsystem::Rpc, EventKind::RpcComplete, rpc_id, NO_ID, bytes);
    }
}

/// Run one baseline roundtrip bracketed by [`rpc_begin`]/[`rpc_end`]
/// records (a no-op when journaling is disabled).
pub async fn journaled_call<F>(
    client_node: &Node,
    req_bytes: u64,
    roundtrip: F,
) -> RpcResult<Response>
where
    F: std::future::Future<Output = RpcResult<Response>>,
{
    let id = rpc_begin(client_node, req_bytes);
    let r = roundtrip.await;
    if let Ok(resp) = &r {
        rpc_end(
            client_node,
            id,
            resp.payload.as_ref().map_or(0, Payload::len),
        );
    }
    r
}
