//! Herd [Kalia et al., SIGCOMM '14] — requests by UC write into a polled
//! region, replies by UD send (Table 1; not part of the paper's
//! evaluation figures, provided for completeness). Replies larger than
//! the UD MTU are fragmented.

use prdma::{Request, Response, RpcClient, RpcFuture, ServerProfile};
use prdma_node::{Cluster, Node};
use prdma_rnic::{MemTarget, Payload, QpMode};

use crate::common::{
    client_poll, journaled_call, qp_pair, request_image, request_parts, QpPair, ServerCtx,
    CLIENT_RESP_ADDR, MSG_HEADER,
};

/// Herd client endpoint.
pub struct HerdClient {
    ctx: ServerCtx,
    qp: QpPair,
    client_node: Node,
}

/// Build a Herd connection (UC in, UD out).
pub fn build_herd(
    cluster: &Cluster,
    client_idx: usize,
    server_idx: usize,
    lane: usize,
    profile: ServerProfile,
    object_slot: u64,
    store_capacity: u64,
) -> HerdClient {
    HerdClient {
        ctx: ServerCtx::new(
            cluster,
            server_idx,
            lane,
            profile,
            object_slot,
            store_capacity,
        ),
        qp: qp_pair(cluster, client_idx, server_idx, QpMode::Uc, QpMode::Ud),
        client_node: cluster.node(client_idx).clone(),
    }
}

impl HerdClient {
    async fn roundtrip(&self, req: Request) -> prdma::RpcResult<Response> {
        let (is_put, obj, len, count, data) = request_parts(&req);

        // UC write into the server's polled request region. UC gives no
        // delivery guarantee: a dropped request is detected by response
        // timeout and re-written (modeled as an immediate bounded retry).
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 8 {
                return Err(prdma::RpcError::TimedOut);
            }
            let tok = self
                .qp
                .fwd
                .write(MemTarget::Dram(self.ctx.req_slot()), request_image(&req))
                .await?;
            if tok.wait_outcome().await.delivered {
                break;
            }
        }
        self.ctx.node.cpu.poll_dispatch().await;

        let (payload, resp_len) = if is_put {
            self.ctx.handle_put(obj, data.as_ref().expect("put")).await;
            (None, 8)
        } else {
            let p = self.ctx.handle_get(obj, len, count).await;
            let l = p.len();
            (Some(p), l)
        };

        // UD reply, fragmented at the MTU; dropped fragments re-sent, but
        // only so many times — an unbounded loop would spin forever under
        // a total loss burst (the client has long since timed out).
        let mtu = self.qp.rev.local().config().ud_mtu;
        let mut remaining = MSG_HEADER + resp_len;
        let mut frag_attempts = 0;
        while remaining > 0 {
            frag_attempts += 1;
            if frag_attempts > 8 {
                return Err(prdma::RpcError::TimedOut);
            }
            let frag = remaining.min(mtu);
            self.qp
                .rev_client
                .post_recv(MemTarget::Dram(CLIENT_RESP_ADDR));
            let tok = self.qp.rev.send(Payload::synthetic(frag, 0)).await?;
            let delivered = tok.wait_outcome().await.delivered;
            let _ = self.qp.rev_client.try_recv();
            if delivered {
                remaining -= frag;
                frag_attempts = 0;
            }
        }
        client_poll(&self.client_node).await;
        Ok(Response {
            payload,
            durable: true,
        })
    }
}

impl RpcClient for HerdClient {
    fn call(&self, req: Request) -> RpcFuture<'_> {
        let bytes = request_image(&req).len();
        Box::pin(journaled_call(
            &self.client_node,
            bytes,
            self.roundtrip(req),
        ))
    }

    fn name(&self) -> &'static str {
        "Herd"
    }
}
