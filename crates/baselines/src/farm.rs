//! FaRM [Dragojević et al., NSDI '14] — one-sided RC writes into a
//! polled message ring, reply by RC write (paper Fig. 2b).

use prdma::{Request, Response, RpcClient, RpcFuture, ServerProfile};
use prdma_node::{Cluster, Node};
use prdma_rnic::{MemTarget, QpMode};

use crate::common::{
    journaled_call, qp_pair, reply_by_write, request_image, request_parts, QpPair, ServerCtx,
};

/// FaRM client endpoint.
pub struct FarmClient {
    ctx: ServerCtx,
    qp: QpPair,
    client_node: Node,
}

/// Build a FaRM connection.
pub fn build_farm(
    cluster: &Cluster,
    client_idx: usize,
    server_idx: usize,
    lane: usize,
    profile: ServerProfile,
    object_slot: u64,
    store_capacity: u64,
) -> FarmClient {
    FarmClient {
        ctx: ServerCtx::new(
            cluster,
            server_idx,
            lane,
            profile,
            object_slot,
            store_capacity,
        ),
        qp: qp_pair(cluster, client_idx, server_idx, QpMode::Rc, QpMode::Rc),
        client_node: cluster.node(client_idx).clone(),
    }
}

impl FarmClient {
    async fn roundtrip(&self, req: Request) -> prdma::RpcResult<Response> {
        let (is_put, obj, len, count, data) = request_parts(&req);
        let h = self.qp.fwd.local().handle().clone();
        let retransfer = self.qp.fwd.local().config().retransfer_interval;

        // A traditional RPC has no redo log: a request in flight when the
        // server dies is simply lost. The client times out, waits for the
        // service to come back *plus* the RDMA connection re-transfer
        // interval (queue-pair re-establishment), and re-sends — the
        // recovery path Fig. 12 charges the traditional scheme for.
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > 64 {
                return Err(prdma::RpcError::TimedOut);
            }
            if !self.ctx.node.service_is_up() {
                self.ctx.node.wait_service_up().await;
                h.sleep(retransfer).await;
            }

            // One-sided write into the server's message ring; the server's
            // polling thread notices it once the DMA lands.
            let tok = match self
                .qp
                .fwd
                .write(MemTarget::Dram(self.ctx.req_slot()), request_image(&req))
                .await
            {
                Ok(tok) => tok,
                // NIC down (full node crash): wait out the outage and
                // re-establish, like a real RC QP error path.
                Err(prdma_rnic::RdmaError::Disconnected) => continue,
                Err(e) => return Err(e.into()),
            };
            tok.wait().await;
            if !self.ctx.node.service_is_up() {
                continue; // died before the poller saw the request
            }
            self.ctx.node.cpu.poll_dispatch().await;

            let (payload, resp_len) = if is_put {
                self.ctx.handle_put(obj, data.as_ref().expect("put")).await;
                (None, 8)
            } else {
                let p = self.ctx.handle_get(obj, len, count).await;
                let l = p.len();
                (Some(p), l)
            };
            if !self.ctx.node.service_is_up() {
                continue; // died mid-processing: no reply is coming
            }

            match reply_by_write(&self.qp.rev, &self.client_node, resp_len).await {
                Ok(()) => {}
                Err(prdma::RpcError::ServerDown) => continue,
                Err(e) => return Err(e),
            }
            return Ok(Response {
                payload,
                durable: true,
            });
        }
    }
}

impl RpcClient for FarmClient {
    fn call(&self, req: Request) -> RpcFuture<'_> {
        let bytes = request_image(&req).len();
        Box::pin(journaled_call(
            &self.client_node,
            bytes,
            self.roundtrip(req),
        ))
    }

    fn name(&self) -> &'static str {
        "FaRM"
    }
}
