//! Octopus [Lu et al., ATC '17] — RPC built on RDMA write-with-immediate:
//! the immediate value interrupts the receiver's CPU for processing; the
//! reply returns the same way (paper Fig. 2h).

use prdma::{Request, Response, RpcClient, RpcFuture, ServerProfile};
use prdma_node::{Cluster, Node};
use prdma_rnic::{MemTarget, Payload, QpMode};
use prdma_simnet::SimDuration;

use crate::common::{
    journaled_call, qp_pair, request_image, request_parts, QpPair, ServerCtx, CLIENT_RESP_ADDR,
    MSG_HEADER,
};

/// Octopus client endpoint. `kernel_overhead` > 0 models LITE's in-kernel
/// variant (syscall + permission checks on each side).
pub struct OctopusClient {
    ctx: ServerCtx,
    qp: QpPair,
    client_node: Node,
    kernel_overhead: SimDuration,
    name: &'static str,
}

/// Build an Octopus connection.
pub fn build_octopus(
    cluster: &Cluster,
    client_idx: usize,
    server_idx: usize,
    lane: usize,
    profile: ServerProfile,
    object_slot: u64,
    store_capacity: u64,
) -> OctopusClient {
    build_write_imm_system(
        cluster,
        client_idx,
        server_idx,
        lane,
        profile,
        object_slot,
        store_capacity,
        SimDuration::ZERO,
        "Octopus",
    )
}

/// Build a LITE connection: the same write-imm RPC flow but executed in
/// the kernel, charging a syscall/permission overhead per side.
pub fn build_lite(
    cluster: &Cluster,
    client_idx: usize,
    server_idx: usize,
    lane: usize,
    profile: ServerProfile,
    object_slot: u64,
    store_capacity: u64,
) -> OctopusClient {
    build_write_imm_system(
        cluster,
        client_idx,
        server_idx,
        lane,
        profile,
        object_slot,
        store_capacity,
        SimDuration::from_nanos(1_200),
        "LITE",
    )
}

#[allow(clippy::too_many_arguments)]
fn build_write_imm_system(
    cluster: &Cluster,
    client_idx: usize,
    server_idx: usize,
    lane: usize,
    profile: ServerProfile,
    object_slot: u64,
    store_capacity: u64,
    kernel_overhead: SimDuration,
    name: &'static str,
) -> OctopusClient {
    OctopusClient {
        ctx: ServerCtx::new(
            cluster,
            server_idx,
            lane,
            profile,
            object_slot,
            store_capacity,
        ),
        qp: qp_pair(cluster, client_idx, server_idx, QpMode::Rc, QpMode::Rc),
        client_node: cluster.node(client_idx).clone(),
        kernel_overhead,
        name,
    }
}

impl OctopusClient {
    async fn roundtrip(&self, req: Request) -> prdma::RpcResult<Response> {
        let (is_put, obj, len, count, data) = request_parts(&req);
        let h = self.qp.fwd.local().handle().clone();

        // LITE: trap into the kernel before posting.
        if self.kernel_overhead > SimDuration::ZERO {
            h.sleep(self.kernel_overhead).await;
        }

        // Request in: write-with-immediate raises a CQ event at the server
        // once the data is placed.
        self.qp
            .fwd
            .write_imm(
                MemTarget::Dram(self.ctx.req_slot()),
                request_image(&req),
                obj as u32,
            )
            .await?;
        let _c = self.qp.fwd_server.recv().await;
        if self.kernel_overhead > SimDuration::ZERO {
            h.sleep(self.kernel_overhead).await;
        }
        self.ctx.node.cpu.poll_dispatch().await;

        let (payload, resp_len) = if is_put {
            self.ctx.handle_put(obj, data.as_ref().expect("put")).await;
            (None, 8)
        } else {
            let p = self.ctx.handle_get(obj, len, count).await;
            let l = p.len();
            (Some(p), l)
        };

        // Reply by write-imm back to the client.
        self.qp
            .rev
            .write_imm(
                MemTarget::Dram(CLIENT_RESP_ADDR),
                Payload::synthetic(MSG_HEADER + resp_len, 0),
                obj as u32,
            )
            .await?;
        let _c = self.qp.rev_client.recv().await;
        self.client_node.cpu.poll_dispatch().await;
        Ok(Response {
            payload,
            durable: true,
        })
    }
}

impl RpcClient for OctopusClient {
    fn call(&self, req: Request) -> RpcFuture<'_> {
        let bytes = request_image(&req).len();
        Box::pin(journaled_call(
            &self.client_node,
            bytes,
            self.roundtrip(req),
        ))
    }

    fn name(&self) -> &'static str {
        self.name
    }
}
