//! Uniform construction of every RPC system (the four durable RPCs plus
//! the nine baselines), so experiment harnesses can sweep them.

use prdma::{
    build_durable, DurableConfig, DurableKind, FlushImpl, RpcClient, ServerProfile, ShardMap,
    ShardedClient,
};
use prdma_node::Cluster;
use prdma_simnet::trace::Role;
use prdma_simnet::SimDuration;

use crate::darpc::build_darpc;
use crate::farm::build_farm;
use crate::fasst::build_fasst;
use crate::herd::build_herd;
use crate::l5::build_l5;
use crate::octopus::{build_lite, build_octopus};
use crate::rfp::build_rfp;
use crate::scalerpc::build_scalerpc;

/// Every RPC system in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// L5 (RC write + poll).
    L5,
    /// RFP (write in, client fetches result by RDMA read).
    Rfp,
    /// FaSST (UD send/send, ≤ 4 KB).
    Fasst,
    /// Octopus (write-imm RPC).
    Octopus,
    /// FaRM (RC write + poll).
    Farm,
    /// ScaleRPC (warm-up/process phases).
    ScaleRpc,
    /// DaRPC (RC send/recv).
    Darpc,
    /// Herd (UC write in, UD send out) — Table 1 only.
    Herd,
    /// LITE (kernel write-imm RPC) — Table 1 only.
    Lite,
    /// S-RFlush-RPC (ours).
    SRFlush,
    /// SFlush-RPC (ours).
    SFlush,
    /// W-RFlush-RPC (ours).
    WRFlush,
    /// WFlush-RPC (ours).
    WFlush,
}

impl SystemKind {
    /// The 11 systems in the paper's evaluation figures, legend order.
    pub const PAPER_EVAL: [SystemKind; 11] = [
        SystemKind::L5,
        SystemKind::Rfp,
        SystemKind::Fasst,
        SystemKind::Octopus,
        SystemKind::Farm,
        SystemKind::ScaleRpc,
        SystemKind::Darpc,
        SystemKind::SRFlush,
        SystemKind::SFlush,
        SystemKind::WRFlush,
        SystemKind::WFlush,
    ];

    /// The write-primitive family the paper compares WFlush/W-RFlush with.
    pub const WRITE_FAMILY: [SystemKind; 5] = [
        SystemKind::L5,
        SystemKind::Rfp,
        SystemKind::Octopus,
        SystemKind::Farm,
        SystemKind::ScaleRpc,
    ];

    /// The send-primitive family the paper compares SFlush/S-RFlush with.
    pub const SEND_FAMILY: [SystemKind; 2] = [SystemKind::Darpc, SystemKind::Fasst];

    /// The paper's four durable RPCs.
    pub const OURS: [SystemKind; 4] = [
        SystemKind::SRFlush,
        SystemKind::SFlush,
        SystemKind::WRFlush,
        SystemKind::WFlush,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::L5 => "L5",
            SystemKind::Rfp => "RFP",
            SystemKind::Fasst => "FaSST",
            SystemKind::Octopus => "Octopus",
            SystemKind::Farm => "FaRM",
            SystemKind::ScaleRpc => "ScaleRPC",
            SystemKind::Darpc => "DaRPC",
            SystemKind::Herd => "Herd",
            SystemKind::Lite => "LITE",
            SystemKind::SRFlush => "S-RFlush-RPC",
            SystemKind::SFlush => "SFlush-RPC",
            SystemKind::WRFlush => "W-RFlush-RPC",
            SystemKind::WFlush => "WFlush-RPC",
        }
    }

    /// Whether this is one of the paper's durable RPCs.
    pub fn is_durable_rpc(self) -> bool {
        Self::OURS.contains(&self)
    }

    /// The matching durable kind, if any.
    pub fn durable_kind(self) -> Option<DurableKind> {
        match self {
            SystemKind::SRFlush => Some(DurableKind::SRFlush),
            SystemKind::SFlush => Some(DurableKind::SFlush),
            SystemKind::WRFlush => Some(DurableKind::WRFlush),
            SystemKind::WFlush => Some(DurableKind::WFlush),
            _ => None,
        }
    }
}

/// Knobs shared by every system's construction.
#[derive(Debug, Clone)]
pub struct SystemOpts {
    /// Server load profile.
    pub profile: ServerProfile,
    /// Flush implementation for the durable RPCs.
    pub flush_impl: FlushImpl,
    /// Object-store slot size (max object bytes).
    pub object_slot: u64,
    /// Object-store capacity in PM.
    pub store_capacity: u64,
    /// Redo-log slots (durable RPCs).
    pub log_slots: u64,
    /// Flow-control threshold (durable RPCs).
    pub throttle_threshold: u64,
}

impl Default for SystemOpts {
    fn default() -> Self {
        SystemOpts {
            profile: ServerProfile::light(),
            flush_impl: FlushImpl::Emulated,
            object_slot: 64 * 1024,
            store_capacity: 32 * 1024 * 1024,
            log_slots: 256,
            throttle_threshold: 128,
        }
    }
}

impl SystemOpts {
    /// Options sized for objects of `object_bytes`.
    pub fn for_object_size(object_bytes: u64, profile: ServerProfile) -> Self {
        SystemOpts {
            profile,
            object_slot: object_bytes.max(64),
            ..Default::default()
        }
    }
}

/// Build a client endpoint for `kind` between `client_idx` and
/// `server_idx`. Durable RPC servers are started before returning.
pub fn build_system(
    cluster: &Cluster,
    kind: SystemKind,
    client_idx: usize,
    server_idx: usize,
    lane: usize,
    opts: &SystemOpts,
) -> Box<dyn RpcClient> {
    // Latency breakdown: software time on the client node is sender-side,
    // on the server node receiver-side (build_durable also sets these,
    // idempotently).
    cluster.node(client_idx).tracer().set_role(Role::Sender);
    cluster.node(server_idx).tracer().set_role(Role::Receiver);
    if let Some(dk) = kind.durable_kind() {
        let cfg = DurableConfig {
            kind: dk,
            flush_impl: opts.flush_impl,
            profile: opts.profile.clone(),
            log_slots: opts.log_slots,
            slot_payload: opts.object_slot,
            object_slot: opts.object_slot,
            store_capacity: opts.store_capacity,
            throttle_threshold: opts.throttle_threshold,
            throttle_backoff: SimDuration::from_micros(20),
            head_persist_interval: 16,
            retry: Default::default(),
            ..Default::default()
        };
        let (client, server) = build_durable(cluster, client_idx, server_idx, lane, cfg);
        server.start();
        return Box::new(client);
    }
    let p = opts.profile.clone();
    let os = opts.object_slot;
    let sc = opts.store_capacity;
    match kind {
        SystemKind::L5 => Box::new(build_l5(cluster, client_idx, server_idx, lane, p, os, sc)),
        SystemKind::Rfp => Box::new(build_rfp(cluster, client_idx, server_idx, lane, p, os, sc)),
        SystemKind::Fasst => Box::new(build_fasst(
            cluster, client_idx, server_idx, lane, p, os, sc,
        )),
        SystemKind::Octopus => Box::new(build_octopus(
            cluster, client_idx, server_idx, lane, p, os, sc,
        )),
        SystemKind::Farm => Box::new(build_farm(cluster, client_idx, server_idx, lane, p, os, sc)),
        SystemKind::ScaleRpc => Box::new(build_scalerpc(
            cluster, client_idx, server_idx, lane, p, os, sc,
        )),
        SystemKind::Darpc => Box::new(build_darpc(
            cluster, client_idx, server_idx, lane, p, os, sc,
        )),
        SystemKind::Herd => Box::new(build_herd(cluster, client_idx, server_idx, lane, p, os, sc)),
        SystemKind::Lite => Box::new(build_lite(cluster, client_idx, server_idx, lane, p, os, sc)),
        _ => unreachable!("durable kinds handled above"),
    }
}

/// Build a shard-aware client for `kind`: one endpoint per shard (shard
/// `s` is served by node `s`; the cluster must have `map.shards()` server
/// nodes) behind client-side routing. Works uniformly for the durable
/// RPCs and every baseline, so scale-out sweeps compare like for like.
pub fn build_sharded_system(
    cluster: &Cluster,
    kind: SystemKind,
    map: ShardMap,
    client_idx: usize,
    lane: usize,
    opts: &SystemOpts,
) -> ShardedClient {
    assert!(
        cluster.servers() >= map.shards(),
        "cluster has {} server nodes, need {}",
        cluster.servers(),
        map.shards()
    );
    let shards = (0..map.shards())
        .map(|s| build_system(cluster, kind, client_idx, s, lane, opts))
        .collect();
    ShardedClient::new(map, shards)
}
