//! FaSST [Kalia et al., OSDI '16] — two-sided RPC over unreliable
//! datagrams (paper Fig. 2d). The UD transport caps messages at one 4 KB
//! MTU, which is why the paper only reports FaSST for objects < 4 KB.

use prdma::{Request, Response, RpcClient, RpcError, RpcFuture, ServerProfile};
use prdma_node::{Cluster, Node};
use prdma_rnic::{MemTarget, QpMode, RdmaError};

use crate::common::{
    journaled_call, qp_pair, reply_by_send, request_image, request_parts, QpPair, ServerCtx,
    MSG_HEADER,
};

/// Client-side loss-detection timeout (ConnectX-class UD RPC stacks use
/// small-millisecond timers).
const RETRY_TIMEOUT: prdma_simnet::SimDuration = prdma_simnet::SimDuration::from_micros(100);
/// Give up after this many attempts.
const MAX_RETRIES: u32 = 8;

/// FaSST client endpoint.
pub struct FasstClient {
    ctx: ServerCtx,
    qp: QpPair,
    client_node: Node,
}

/// Build a FaSST connection (UD both ways).
pub fn build_fasst(
    cluster: &Cluster,
    client_idx: usize,
    server_idx: usize,
    lane: usize,
    profile: ServerProfile,
    object_slot: u64,
    store_capacity: u64,
) -> FasstClient {
    FasstClient {
        ctx: ServerCtx::new(
            cluster,
            server_idx,
            lane,
            profile,
            object_slot,
            store_capacity,
        ),
        qp: qp_pair(cluster, client_idx, server_idx, QpMode::Ud, QpMode::Ud),
        client_node: cluster.node(client_idx).clone(),
    }
}

impl FasstClient {
    async fn roundtrip(&self, req: Request) -> prdma::RpcResult<Response> {
        let (is_put, obj, len, count, data) = request_parts(&req);
        let mtu = self.qp.fwd.local().config().ud_mtu;
        if req.transfer_len() + MSG_HEADER > mtu {
            return Err(RpcError::Unsupported(
                "FaSST UD transport is limited to one 4 KB MTU",
            ));
        }

        // UD is unreliable: FaSST recovers losses with client-side
        // timeouts and re-sends (at-least-once; puts are idempotent).
        // A dropped request leaves its pre-posted recv buffer unconsumed;
        // the next attempt posts another, and the stale targets are
        // reclaimed when later sends land (UD recv queues over-provision).
        let h = self.qp.fwd.local().handle().clone();
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > MAX_RETRIES {
                return Err(RpcError::TimedOut);
            }
            let image = request_image(&req);
            // Two-sided send: stage the message into a send buffer.
            self.client_node.cpu.memcpy(image.len()).await;
            self.qp
                .fwd_server
                .post_recv(MemTarget::Dram(self.ctx.req_slot()));
            match self.qp.fwd.send(image).await {
                Ok(_) => {}
                Err(RdmaError::MtuExceeded { .. }) => {
                    return Err(RpcError::Unsupported("FaSST UD MTU"))
                }
                Err(e) => return Err(e.into()),
            }
            // Request may have been dropped: bounded wait for delivery.
            match prdma_simnet::timeout(&h, RETRY_TIMEOUT, self.qp.fwd_server.recv()).await {
                Ok(_c) => {}
                Err(_) => continue, // lost on the wire: re-send
            }
            self.ctx.node.cpu.parse_request().await;

            let (payload, resp_len) = if is_put {
                self.ctx.handle_put(obj, data.as_ref().expect("put")).await;
                (None, 8)
            } else {
                let p = self.ctx.handle_get(obj, len, count).await;
                let l = p.len();
                (Some(p), l)
            };

            let delivered = reply_by_send(
                &self.qp.rev,
                &self.qp.rev_client,
                &self.client_node,
                resp_len,
            )
            .await?;
            if !delivered {
                continue; // reply lost: the client times out and re-sends
            }
            return Ok(Response {
                payload,
                durable: true,
            });
        }
    }
}

impl RpcClient for FasstClient {
    fn call(&self, req: Request) -> RpcFuture<'_> {
        let bytes = request_image(&req).len();
        Box::pin(journaled_call(
            &self.client_node,
            bytes,
            self.roundtrip(req),
        ))
    }

    fn name(&self) -> &'static str {
        "FaSST"
    }
}
