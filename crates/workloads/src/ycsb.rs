//! Native YCSB-compatible workload generators (paper Section 5.1,
//! Fig. 11): 50 K records, 8-byte keys, 4 KB values, 300 K operations,
//! zipfian 0.99 (workload D uses the latest distribution).

use prdma::{Request, RpcClient};
use prdma_rnic::Payload;
use prdma_simnet::{Histogram, SimDuration, SimHandle};

use crate::dist::{workload_rng, KeyDist};
use crate::micro::RunResult;

/// The six core YCSB workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbWorkload {
    /// 50% update / 50% read, zipfian.
    A,
    /// 5% update / 95% read, zipfian.
    B,
    /// 100% read, zipfian.
    C,
    /// 5% insert / 95% read-latest.
    D,
    /// 95% scan / 5% insert, zipfian start keys.
    E,
    /// 50% read / 50% read-modify-write, zipfian.
    F,
}

impl YcsbWorkload {
    /// All six, in order.
    pub const ALL: [YcsbWorkload; 6] = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];

    /// Letter label.
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        }
    }
}

/// YCSB driver parameters (defaults follow the paper).
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Records pre-loaded in the KV store.
    pub records: u64,
    /// Operations to run.
    pub ops: u64,
    /// Value size in bytes (keys are 8 B, maintained client-side).
    pub value_size: u64,
    /// Which workload mix.
    pub workload: YcsbWorkload,
    /// Max scan length for workload E (uniform 1..=max).
    pub max_scan: u32,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            records: 50_000,
            ops: 300_000,
            value_size: 4 * 1024,
            workload: YcsbWorkload::A,
            max_scan: 100,
            seed: 7,
        }
    }
}

impl YcsbConfig {
    /// Default config for one workload with a custom op count.
    pub fn workload(workload: YcsbWorkload, ops: u64) -> Self {
        YcsbConfig {
            workload,
            ops,
            ..Default::default()
        }
    }
}

/// Run a YCSB workload against `client` (the KV index lives client-side,
/// per the paper; the server stores values in PM).
pub async fn run_ycsb(client: &dyn RpcClient, h: &SimHandle, cfg: &YcsbConfig) -> RunResult {
    let mut rng = workload_rng(cfg.seed);
    let dist = match cfg.workload {
        YcsbWorkload::D => KeyDist::latest(cfg.records),
        _ => KeyDist::zipfian(cfg.records),
    };
    let mut hist = Histogram::new();
    let mut done = 0u64;
    let t0 = h.now();

    for i in 0..cfg.ops {
        let start = h.now();
        let ok = match cfg.workload {
            YcsbWorkload::A => {
                let obj = dist.sample(&mut rng);
                if rng.gen::<f64>() < 0.5 {
                    get(client, obj, cfg).await
                } else {
                    put(client, obj, cfg, i).await
                }
            }
            YcsbWorkload::B => {
                let obj = dist.sample(&mut rng);
                if rng.gen::<f64>() < 0.95 {
                    get(client, obj, cfg).await
                } else {
                    put(client, obj, cfg, i).await
                }
            }
            YcsbWorkload::C => {
                let obj = dist.sample(&mut rng);
                get(client, obj, cfg).await
            }
            YcsbWorkload::D => {
                if rng.gen::<f64>() < 0.95 {
                    let obj = dist.sample(&mut rng);
                    get(client, obj, cfg).await
                } else {
                    let obj = dist.on_insert();
                    put(client, obj, cfg, i).await
                }
            }
            YcsbWorkload::E => {
                if rng.gen::<f64>() < 0.95 {
                    let start_key = dist.sample(&mut rng);
                    let count = rng.gen_range(1..=cfg.max_scan);
                    client
                        .call(Request::Scan {
                            start: start_key,
                            count,
                            len: cfg.value_size,
                        })
                        .await
                        .is_ok()
                } else {
                    let obj = dist.on_insert();
                    put(client, obj, cfg, i).await
                }
            }
            YcsbWorkload::F => {
                let obj = dist.sample(&mut rng);
                if rng.gen::<f64>() < 0.5 {
                    get(client, obj, cfg).await
                } else {
                    // read-modify-write: a read followed by an update,
                    // measured as one composite op.
                    let r = get(client, obj, cfg).await;
                    r && put(client, obj, cfg, i).await
                }
            }
        };
        if ok {
            hist.record_duration(h.now() - start);
            done += 1;
        }
    }

    let elapsed = h.now() - t0;
    RunResult {
        ops: done,
        unsupported: cfg.ops - done,
        failed: 0,
        elapsed,
        latency: hist.summary(),
        kops: if elapsed > SimDuration::ZERO {
            done as f64 / elapsed.as_secs_f64() / 1e3
        } else {
            0.0
        },
    }
}

async fn get(client: &dyn RpcClient, obj: u64, cfg: &YcsbConfig) -> bool {
    client
        .call(Request::Get {
            obj,
            len: cfg.value_size,
        })
        .await
        .is_ok()
}

async fn put(client: &dyn RpcClient, obj: u64, cfg: &YcsbConfig, tag: u64) -> bool {
    client
        .call(Request::Put {
            obj,
            data: Payload::synthetic(cfg.value_size, tag),
        })
        .await
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdma::ServerProfile;
    use prdma_baselines::{build_system, SystemKind, SystemOpts};
    use prdma_node::{Cluster, ClusterConfig};
    use prdma_simnet::Sim;

    fn run(workload: YcsbWorkload, kind: SystemKind) -> RunResult {
        let mut sim = Sim::new(21);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
        let opts = SystemOpts::for_object_size(4096, ServerProfile::light());
        let client = build_system(&cluster, kind, 1, 0, 0, &opts);
        let cfg = YcsbConfig {
            records: 200,
            ops: 120,
            value_size: 4096,
            workload,
            max_scan: 10,
            seed: 3,
        };
        let h = sim.handle();
        sim.block_on(async move { run_ycsb(client.as_ref(), &h, &cfg).await })
    }

    #[test]
    fn all_workloads_complete_on_wflush() {
        for w in YcsbWorkload::ALL {
            let r = run(w, SystemKind::WFlush);
            assert_eq!(r.ops, 120, "workload {w:?}");
            assert!(r.latency.mean_ns > 0.0);
        }
    }

    #[test]
    fn scans_cost_more_than_reads() {
        let r_scan = run(YcsbWorkload::E, SystemKind::Farm);
        let r_read = run(YcsbWorkload::C, SystemKind::Farm);
        assert!(
            r_scan.latency.mean_ns > r_read.latency.mean_ns * 1.5,
            "scan {} vs read {}",
            r_scan.latency.mean_ns,
            r_read.latency.mean_ns
        );
    }

    #[test]
    fn write_heavy_a_benefits_durable_rpcs_vs_farm() {
        let ours = run(YcsbWorkload::A, SystemKind::WFlush);
        let farm = run(YcsbWorkload::A, SystemKind::Farm);
        assert!(
            ours.latency.mean_ns < farm.latency.mean_ns,
            "WFlush {} !< FaRM {}",
            ours.latency.mean_ns,
            farm.latency.mean_ns
        );
    }
}
