//! Synthetic graph datasets (paper Section 5.1, Fig. 10).
//!
//! The paper uses three web-graph datasets from law.di.unimi.it. Those
//! downloads are not available offline, so we generate graphs with the
//! same node/edge counts and a power-law degree profile — the properties
//! that shape PageRank's RPC traffic (DESIGN.md documents this
//! substitution).

use crate::dist::{workload_rng, Zipfian};

/// The paper's three PageRank datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphDataset {
    /// wordassociation-2011: 10 K nodes, 72 K edges.
    WordAssociation2011,
    /// enron: 69 K nodes, 276 K edges.
    Enron,
    /// dblp-2010: 326 K nodes, 1 615 K edges.
    Dblp2010,
}

impl GraphDataset {
    /// All three, in the paper's order.
    pub const ALL: [GraphDataset; 3] = [
        GraphDataset::WordAssociation2011,
        GraphDataset::Enron,
        GraphDataset::Dblp2010,
    ];

    /// `(nodes, edges)` as reported by the paper.
    pub fn shape(self) -> (u32, u64) {
        match self {
            GraphDataset::WordAssociation2011 => (10_000, 72_000),
            GraphDataset::Enron => (69_000, 276_000),
            GraphDataset::Dblp2010 => (326_000, 1_615_000),
        }
    }

    /// Dataset name as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            GraphDataset::WordAssociation2011 => "wordassociation-2011",
            GraphDataset::Enron => "enron",
            GraphDataset::Dblp2010 => "dblp-2010",
        }
    }
}

/// A directed graph in CSR form.
pub struct Graph {
    /// Node count.
    pub nodes: u32,
    /// CSR row offsets (`nodes + 1` entries).
    pub offsets: Vec<u64>,
    /// CSR column indices (edge targets).
    pub targets: Vec<u32>,
}

impl Graph {
    /// Edge count.
    pub fn edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Serialized size in bytes when stored remotely (CSR arrays).
    pub fn stored_bytes(&self) -> u64 {
        (self.offsets.len() * 8 + self.targets.len() * 4) as u64
    }
}

/// Generate a power-law graph matching `dataset`'s node/edge counts.
pub fn generate(dataset: GraphDataset, seed: u64) -> Graph {
    let (nodes, edges) = dataset.shape();
    generate_power_law(nodes, edges, seed)
}

/// Generate `edges` directed edges over `nodes` nodes with zipfian-skewed
/// endpoints (power-law in- and out-degree), deterministically from
/// `seed`.
pub fn generate_power_law(nodes: u32, edges: u64, seed: u64) -> Graph {
    assert!(nodes > 1, "need at least two nodes");
    let mut rng = workload_rng(seed);
    let zsrc = Zipfian::new(nodes as u64, 0.7);
    // Count degrees first, then fill CSR.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(edges as usize);
    for _ in 0..edges {
        let s = zsrc.sample(&mut rng) as u32;
        // Target mixes skew and uniform for connectivity.
        let t = if rng.gen::<bool>() {
            zsrc.sample(&mut rng) as u32
        } else {
            rng.gen_range(0..nodes)
        };
        let t = if t == s { (t + 1) % nodes } else { t };
        pairs.push((s, t));
    }
    let mut degree = vec![0u64; nodes as usize];
    for &(s, _) in &pairs {
        degree[s as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(nodes as usize + 1);
    let mut acc = 0u64;
    offsets.push(0);
    for &d in &degree {
        acc += d;
        offsets.push(acc);
    }
    let mut cursor = offsets.clone();
    let mut targets = vec![0u32; edges as usize];
    for (s, t) in pairs {
        let at = cursor[s as usize];
        targets[at as usize] = t;
        cursor[s as usize] += 1;
    }
    Graph {
        nodes,
        offsets,
        targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        assert_eq!(GraphDataset::WordAssociation2011.shape(), (10_000, 72_000));
        assert_eq!(GraphDataset::Enron.shape(), (69_000, 276_000));
        assert_eq!(GraphDataset::Dblp2010.shape(), (326_000, 1_615_000));
    }

    #[test]
    fn generated_graph_has_exact_counts() {
        let g = generate(GraphDataset::WordAssociation2011, 1);
        assert_eq!(g.nodes, 10_000);
        assert_eq!(g.edges(), 72_000);
        assert_eq!(*g.offsets.last().unwrap(), 72_000);
    }

    #[test]
    fn degrees_are_power_law_skewed() {
        let g = generate(GraphDataset::WordAssociation2011, 2);
        let mut degs: Vec<u64> = (0..g.nodes).map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = degs.iter().take(g.nodes as usize / 100).sum();
        let frac = top1pct as f64 / g.edges() as f64;
        assert!(frac > 0.15, "top-1% degree share {frac}");
    }

    #[test]
    fn no_self_loops() {
        let g = generate(GraphDataset::WordAssociation2011, 3);
        for v in 0..g.nodes {
            assert!(!g.neighbors(v).contains(&v), "self loop at {v}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_power_law(1000, 5000, 9);
        let b = generate_power_law(1000, 5000, 9);
        assert_eq!(a.targets, b.targets);
        let c = generate_power_law(1000, 5000, 10);
        assert_ne!(a.targets, c.targets);
    }
}
