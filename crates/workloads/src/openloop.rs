//! Open-loop load generation: arrivals fire on a wall-clock schedule
//! whether or not earlier requests have finished, so queueing delay is
//! *measured* instead of silently throttled away (the closed-loop
//! coordinated-omission bug). A seeded Poisson process — optionally
//! ramped, diurnal, or bursty — is thinned from the peak rate, each
//! arrival is stamped with a logical client id drawn from a pool of
//! 10⁴–10⁶ simulated clients, and the pool is multiplexed over a small
//! bounded set of in-flight endpoint futures (one per physical client
//! connection). Latency is measured from the *scheduled* arrival
//! instant to completion, so a saturated service shows its backlog as
//! tail latency — the knee the `fig_openloop` sweep walks.

use std::collections::VecDeque;

use prdma::{Request, RpcClient};
use prdma_rnic::Payload;
use prdma_simnet::{channel, Histogram, SimDuration, SimHandle, SimTime, Summary};

use crate::dist::{workload_rng, Zipfian};

/// The offered-rate envelope over the run, normalized so the *mean*
/// rate equals [`OpenLoopConfig::rate_ops_per_sec`] regardless of
/// shape (a sweep point means the same aggregate work whatever the
/// envelope looks like).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateShape {
    /// Flat Poisson arrivals at the configured rate.
    Constant,
    /// Linear ramp from `2/(1+to)` to `2·to/(1+to)` of the mean — e.g.
    /// `to = 3.0` triples the instantaneous rate across the run.
    Ramp {
        /// End-of-run rate as a multiple of the start-of-run rate.
        to: f64,
    },
    /// One sinusoidal day: peak at the start and end, trough mid-run.
    Diurnal {
        /// Trough rate as a fraction of the peak rate, in `(0, 1]`.
        trough: f64,
    },
    /// Square-wave bursts: `duty_pct`% of each period at `factor`× the
    /// off-rate (off-rate scaled so the mean stays at the configured
    /// rate).
    Bursty {
        /// On-burst rate as a multiple of the off-burst rate (> 1).
        factor: f64,
        /// Burst period as a fraction of the run duration, in `(0, 1]`.
        period_frac: f64,
        /// Percentage of each period spent bursting, in `1..=99`.
        duty_pct: u8,
    },
}

impl RateShape {
    /// Instantaneous rate multiplier at normalized time `x ∈ [0, 1)`,
    /// scaled so the multiplier's mean over the run is 1.
    pub fn factor(&self, x: f64) -> f64 {
        match *self {
            RateShape::Constant => 1.0,
            RateShape::Ramp { to } => {
                let to = to.max(1e-6);
                2.0 * (1.0 + (to - 1.0) * x) / (1.0 + to)
            }
            RateShape::Diurnal { trough } => {
                let trough = trough.clamp(1e-6, 1.0);
                let mid = (1.0 + trough) / 2.0;
                let amp = (1.0 - trough) / 2.0;
                1.0 + (amp / mid) * (2.0 * std::f64::consts::PI * x).cos()
            }
            RateShape::Bursty {
                factor,
                period_frac,
                duty_pct,
            } => {
                let d = f64::from(duty_pct.clamp(1, 99)) / 100.0;
                let f = factor.max(1.0);
                // off-rate o solves d·f·o + (1−d)·o = 1.
                let off = 1.0 / (d * f + (1.0 - d));
                let phase = (x / period_frac.clamp(1e-6, 1.0)).fract();
                if phase < d {
                    f * off
                } else {
                    off
                }
            }
        }
    }

    /// Maximum of [`factor`](RateShape::factor) over the run — the
    /// thinning envelope for Lewis–Shedler sampling.
    pub fn peak(&self) -> f64 {
        match *self {
            RateShape::Constant => 1.0,
            RateShape::Ramp { to } => {
                let to = to.max(1e-6);
                2.0 * to.max(1.0) / (1.0 + to)
            }
            RateShape::Diurnal { trough } => {
                let trough = trough.clamp(1e-6, 1.0);
                2.0 / (1.0 + trough)
            }
            RateShape::Bursty {
                factor, duty_pct, ..
            } => {
                let d = f64::from(duty_pct.clamp(1, 99)) / 100.0;
                let f = factor.max(1.0);
                f / (d * f + (1.0 - d))
            }
        }
    }
}

/// A mid-run change of zipfian skew (hot-set migration): from
/// [`OpenLoopConfig::theta`] to `theta` at `at_frac` of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewShift {
    /// When the shift lands, as a fraction of the run duration.
    pub at_frac: f64,
    /// Skew after the shift.
    pub theta: f64,
}

/// Open-loop generator parameters.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Logical clients in the pool (the paper's target scale is
    /// 10⁴–10⁶). Each arrival belongs to one logical client; a logical
    /// client's requests are serialized through one endpoint.
    pub clients: u64,
    /// Mean aggregate offered load, operations per simulated second.
    pub rate_ops_per_sec: f64,
    /// Run length in simulated time.
    pub duration: SimDuration,
    /// Offered-rate envelope.
    pub shape: RateShape,
    /// Objects in the store.
    pub objects: u64,
    /// Object size in bytes.
    pub object_size: u64,
    /// Fraction of reads.
    pub read_ratio: f64,
    /// Zipfian skew of the key distribution, in `[0, 1)`.
    pub theta: f64,
    /// Optional mid-run skew shift.
    pub skew_shift: Option<SkewShift>,
    /// Schedule RNG seed (independent of the simulator's stream).
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            clients: 10_000,
            rate_ops_per_sec: 100_000.0,
            duration: SimDuration::from_millis(20),
            shape: RateShape::Constant,
            objects: 50_000,
            object_size: 1024,
            read_ratio: 0.5,
            theta: 0.99,
            skew_shift: None,
            seed: 20211114,
        }
    }
}

/// One scheduled request: everything about it is fixed at schedule
/// time, so the arrival stream is a pure function of the config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from run start, nanoseconds.
    pub at_ns: u64,
    /// Logical client issuing this request.
    pub client: u64,
    /// Target object.
    pub obj: u64,
    /// Read (`Get`) or write (`Put`).
    pub is_read: bool,
}

/// Generate the full arrival schedule: a Poisson process at the peak
/// rate, thinned to the shape's instantaneous rate (Lewis–Shedler),
/// each accepted arrival stamped with a logical client, a key, and an
/// op type. Deterministic: same config ⇒ byte-identical schedule.
pub fn gen_schedule(cfg: &OpenLoopConfig) -> Vec<Arrival> {
    assert!(cfg.clients > 0, "empty client pool");
    assert!(cfg.rate_ops_per_sec > 0.0, "non-positive offered rate");
    let mut rng = workload_rng(cfg.seed ^ 0x4f70_656e_4c6f_6f70); // "OpenLoop"
    let dur_s = cfg.duration.as_secs_f64();
    let peak_rate = cfg.rate_ops_per_sec * cfg.shape.peak();
    let zipf = Zipfian::new(cfg.objects, cfg.theta);
    let shifted_zipf = cfg.skew_shift.map(|s| Zipfian::new(cfg.objects, s.theta));
    let mut out = Vec::with_capacity((cfg.rate_ops_per_sec * dur_s) as usize + 16);
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival at the peak rate; gen() ∈ [0, 1),
        // so ln(1 − u) is finite.
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() / peak_rate;
        if t >= dur_s {
            break;
        }
        let x = t / dur_s;
        // Thin: keep with probability factor(x)/peak.
        if rng.gen::<f64>() * cfg.shape.peak() > cfg.shape.factor(x) {
            continue;
        }
        let z = match (&shifted_zipf, cfg.skew_shift) {
            (Some(z), Some(s)) if x >= s.at_frac => z,
            _ => &zipf,
        };
        out.push(Arrival {
            at_ns: (t * 1e9) as u64,
            client: rng.gen_range(0..cfg.clients),
            obj: z.sample(&mut rng),
            is_read: rng.gen::<f64>() < cfg.read_ratio,
        });
    }
    out
}

/// Results of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopResult {
    /// Configured mean offered load (KOPS).
    pub offered_kops: f64,
    /// Scheduled arrivals.
    pub arrivals: u64,
    /// Completed operations.
    pub ops: u64,
    /// Failed operations (transport/RPC errors after retries).
    pub failed: u64,
    /// Unsupported operations.
    pub unsupported: u64,
    /// Achieved throughput (KOPS over the drain-inclusive elapsed time).
    pub kops: f64,
    /// Latency from *scheduled arrival* to completion — includes the
    /// admission-queue wait, which is the whole point of open loop.
    pub latency: Summary,
    /// Simulated time from run start to last completion.
    pub elapsed: SimDuration,
}

/// Drive the schedule against a pool of `endpoints` (one per physical
/// client connection). Logical client `c` is pinned to endpoint
/// `c % K`, so each logical client's requests stay ordered while 10⁴+
/// clients multiplex over K bounded in-flight futures. The generator
/// task releases arrivals at their scheduled instants into per-endpoint
/// admission channels ([`channel`] — same-instant bursts go out as one
/// batched send); each endpoint worker drains its queue one request at
/// a time and records completion against the *scheduled* arrival time.
pub async fn run_openloop(
    endpoints: Vec<Box<dyn RpcClient>>,
    h: &SimHandle,
    cfg: &OpenLoopConfig,
) -> OpenLoopResult {
    assert!(!endpoints.is_empty(), "need at least one endpoint");
    let schedule = gen_schedule(cfg);
    let arrivals = schedule.len() as u64;
    let k = endpoints.len();
    let t0 = h.now();

    let mut txs = Vec::with_capacity(k);
    let mut joins = Vec::with_capacity(k);
    for endpoint in endpoints {
        let (tx, mut rx) = channel::<(SimTime, Arrival)>();
        txs.push(tx);
        let h2 = h.clone();
        let object_size = cfg.object_size;
        joins.push(h.spawn(async move {
            let mut hist = Histogram::new();
            let mut done = 0u64;
            let mut failed = 0u64;
            let mut unsupported = 0u64;
            let mut q = VecDeque::new();
            loop {
                if q.is_empty() && rx.recv_all(&mut q).await == 0 {
                    break;
                }
                let (sched, arr) = q.pop_front().expect("non-empty after recv_all");
                let req = if arr.is_read {
                    Request::Get {
                        obj: arr.obj,
                        len: object_size,
                    }
                } else {
                    Request::Put {
                        obj: arr.obj,
                        data: Payload::synthetic(object_size, arr.client ^ arr.obj),
                    }
                };
                match endpoint.call(req).await {
                    Ok(_) => {
                        hist.record_duration(h2.now() - sched);
                        done += 1;
                    }
                    Err(prdma::RpcError::Unsupported(_)) => unsupported += 1,
                    Err(_) => failed += 1,
                }
            }
            (done, failed, unsupported, hist)
        }));
    }

    // Generator: release each arrival at its scheduled instant. A run
    // of same-instant arrivals (bursty shapes produce them) is released
    // as one batch per endpoint — one wake per endpoint per instant.
    let mut i = 0usize;
    let mut batch: Vec<Vec<(SimTime, Arrival)>> = (0..k).map(|_| Vec::new()).collect();
    while i < schedule.len() {
        let due = t0 + SimDuration::from_nanos(schedule[i].at_ns);
        if h.now() < due {
            h.sleep_until(due).await;
        }
        let mut j = i;
        while j < schedule.len() && schedule[j].at_ns == schedule[i].at_ns {
            let arr = schedule[j];
            batch[(arr.client % k as u64) as usize].push((due, arr));
            j += 1;
        }
        for (tx, b) in txs.iter().zip(batch.iter_mut()) {
            if !b.is_empty() {
                let _ = tx.send_batch(b.drain(..));
            }
        }
        i = j;
    }
    drop(txs);

    let mut merged = Histogram::new();
    let mut ops = 0;
    let mut failed = 0;
    let mut unsupported = 0;
    for j in joins {
        let (o, f, u, hist) = j.await;
        ops += o;
        failed += f;
        unsupported += u;
        merged.merge(&hist);
    }
    let elapsed = h.now() - t0;
    let kops = if elapsed > SimDuration::ZERO {
        ops as f64 / elapsed.as_secs_f64() / 1e3
    } else {
        0.0
    };
    OpenLoopResult {
        offered_kops: cfg.rate_ops_per_sec / 1e3,
        arrivals,
        ops,
        failed,
        unsupported,
        kops,
        latency: merged.summary(),
        elapsed,
    }
}

/// Find the knee of a latency-vs-load curve: the highest offered load
/// whose p99 stays within `tolerance`× the lightest point's p99.
/// `points` is `(offered, p99)` sorted by offered load; returns the
/// knee's offered load, or `None` when even the lightest point has no
/// samples (p99 of 0).
pub fn detect_knee(points: &[(f64, f64)], tolerance: f64) -> Option<f64> {
    let (_, base) = *points.first()?;
    if base <= 0.0 {
        return None;
    }
    points
        .iter()
        .take_while(|&&(_, p99)| p99 <= base * tolerance)
        .map(|&(offered, _)| offered)
        .last()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdma::ServerProfile;
    use prdma_baselines::{build_system, SystemKind, SystemOpts};
    use prdma_node::{Cluster, ClusterConfig};
    use prdma_simnet::Sim;

    fn quick_cfg() -> OpenLoopConfig {
        OpenLoopConfig {
            clients: 10_000,
            rate_ops_per_sec: 50_000.0,
            duration: SimDuration::from_millis(5),
            objects: 500,
            object_size: 256,
            ..Default::default()
        }
    }

    #[test]
    fn shapes_average_to_one() {
        // The normalization contract: whatever the envelope, its mean
        // multiplier over the run is 1 (so sweeping shapes at one rate
        // offers the same total work).
        let shapes = [
            RateShape::Constant,
            RateShape::Ramp { to: 3.0 },
            RateShape::Diurnal { trough: 0.25 },
            RateShape::Bursty {
                factor: 4.0,
                period_frac: 0.1,
                duty_pct: 25,
            },
        ];
        for shape in shapes {
            let n = 100_000;
            let mean: f64 = (0..n)
                .map(|i| shape.factor((i as f64 + 0.5) / n as f64))
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - 1.0).abs() < 0.01,
                "{shape:?}: mean multiplier {mean}"
            );
            assert!(
                shape.peak() >= 1.0 - 1e-9,
                "{shape:?}: peak {}",
                shape.peak()
            );
        }
    }

    #[test]
    fn schedule_hits_the_offered_rate() {
        for shape in [
            RateShape::Constant,
            RateShape::Ramp { to: 2.0 },
            RateShape::Bursty {
                factor: 5.0,
                period_frac: 0.2,
                duty_pct: 20,
            },
        ] {
            let cfg = OpenLoopConfig {
                rate_ops_per_sec: 200_000.0,
                duration: SimDuration::from_millis(50),
                shape,
                ..quick_cfg()
            };
            let s = gen_schedule(&cfg);
            let expect = cfg.rate_ops_per_sec * cfg.duration.as_secs_f64();
            let got = s.len() as f64;
            assert!(
                (got - expect).abs() < expect * 0.1,
                "{shape:?}: {got} arrivals, expected ~{expect}"
            );
            assert!(s.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        }
    }

    #[test]
    fn ramp_shifts_arrival_mass_late() {
        let cfg = OpenLoopConfig {
            shape: RateShape::Ramp { to: 4.0 },
            rate_ops_per_sec: 400_000.0,
            ..quick_cfg()
        };
        let s = gen_schedule(&cfg);
        let half = cfg.duration.as_nanos() / 2;
        let late = s.iter().filter(|a| a.at_ns >= half).count();
        // Mean multiplier 1 with a 1:4 ramp ⇒ ~65% of mass after t/2.
        assert!(
            late * 10 > s.len() * 6,
            "only {late}/{} arrivals in the second half",
            s.len()
        );
    }

    #[test]
    fn skew_shift_changes_the_hot_set_mid_run() {
        let cfg = OpenLoopConfig {
            theta: 0.99,
            skew_shift: Some(SkewShift {
                at_frac: 0.5,
                theta: 0.0,
            }),
            rate_ops_per_sec: 400_000.0,
            objects: 10_000,
            ..quick_cfg()
        };
        let s = gen_schedule(&cfg);
        let half = cfg.duration.as_nanos() / 2;
        let head_frac = |arrs: &[&Arrival]| {
            arrs.iter().filter(|a| a.obj < 100).count() as f64 / arrs.len().max(1) as f64
        };
        let early: Vec<&Arrival> = s.iter().filter(|a| a.at_ns < half).collect();
        let late: Vec<&Arrival> = s.iter().filter(|a| a.at_ns >= half).collect();
        // theta 0.99 concentrates on the head; theta 0 is uniform.
        assert!(head_frac(&early) > 0.3, "early head {}", head_frac(&early));
        assert!(head_frac(&late) < 0.1, "late head {}", head_frac(&late));
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let cfg = quick_cfg();
        assert_eq!(gen_schedule(&cfg), gen_schedule(&cfg));
        let other = OpenLoopConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        assert_ne!(gen_schedule(&cfg), gen_schedule(&other));
    }

    #[test]
    fn pool_multiplexes_logical_clients_over_endpoints() {
        let mut sim = Sim::new(9);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(4));
        let opts = SystemOpts::for_object_size(256, ServerProfile::light());
        let endpoints: Vec<Box<dyn prdma::RpcClient>> = (1..4)
            .map(|i| build_system(&cluster, SystemKind::WFlush, i, 0, i, &opts))
            .collect();
        let cfg = OpenLoopConfig {
            rate_ops_per_sec: 20_000.0,
            duration: SimDuration::from_millis(2),
            ..quick_cfg()
        };
        let h = sim.handle();
        let r = sim.block_on(async move { run_openloop(endpoints, &h, &cfg).await });
        assert!(r.arrivals > 0);
        assert_eq!(r.ops, r.arrivals, "light load: every arrival completes");
        assert_eq!(r.failed + r.unsupported, 0);
        assert!(r.latency.p50_ns > 0);
        assert!(r.latency.p999_ns >= r.latency.p99_ns);
    }

    #[test]
    fn open_loop_latency_includes_queueing_under_overload() {
        // One endpoint, offered load far above one connection's service
        // rate: a closed loop would hide the backlog (coordinated
        // omission); the open loop must report it as tail latency that
        // dwarfs the unloaded p50.
        let run = |rate: f64| {
            let mut sim = Sim::new(10);
            let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
            let opts = SystemOpts::for_object_size(256, ServerProfile::light());
            let endpoints = vec![build_system(&cluster, SystemKind::WFlush, 1, 0, 0, &opts)];
            let cfg = OpenLoopConfig {
                rate_ops_per_sec: rate,
                duration: SimDuration::from_millis(2),
                ..quick_cfg()
            };
            let h = sim.handle();
            sim.block_on(async move { run_openloop(endpoints, &h, &cfg).await })
        };
        let light = run(5_000.0);
        let heavy = run(400_000.0);
        assert!(
            heavy.latency.p99_ns > light.latency.p99_ns * 10,
            "overload p99 {} vs light p99 {}",
            heavy.latency.p99_ns,
            light.latency.p99_ns
        );
        assert!(
            heavy.elapsed > SimDuration::from_millis(2),
            "drain extends past the schedule"
        );
    }

    #[test]
    fn knee_detection_picks_the_last_flat_point() {
        let curve = [
            (25.0, 100.0),
            (50.0, 110.0),
            (100.0, 160.0),
            (200.0, 900.0),
            (400.0, 4000.0),
        ];
        assert_eq!(detect_knee(&curve, 3.0), Some(100.0));
        assert_eq!(detect_knee(&curve[..1], 3.0), Some(25.0));
        assert_eq!(detect_knee(&[], 3.0), None);
        assert_eq!(detect_knee(&[(25.0, 0.0)], 3.0), None);
    }

    #[test]
    fn knee_detection_boundary_cases() {
        // A curve that never saturates: the knee is the heaviest point
        // swept (the sweep, not the system, ran out).
        let flat = [(25.0, 100.0), (50.0, 101.0), (100.0, 102.0), (200.0, 103.0)];
        assert_eq!(detect_knee(&flat, 3.0), Some(200.0));
        // A single point exactly at tolerance 1.0: the baseline always
        // covers itself.
        assert_eq!(detect_knee(&[(25.0, 100.0)], 1.0), Some(25.0));
        // Every point after the lightest blows the budget: the lightest
        // load *is* the knee.
        let cliff = [(25.0, 100.0), (50.0, 900.0), (100.0, 4000.0)];
        assert_eq!(detect_knee(&cliff, 1.5), Some(25.0));
        // A tolerance below 1 rejects even the baseline point — no load
        // meets the target.
        assert_eq!(detect_knee(&cliff, 0.5), None);
    }
}
