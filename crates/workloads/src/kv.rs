//! Client-side KV index (paper Section 5.1: "Clients perform RPCs to
//! access KV pairs in the remote PM, and maintain KV indexes in the main
//! memory of clients locally").
//!
//! Keys are 8 bytes; the index maps them to object ids in the server's
//! PM store. Inserts allocate fresh object ids; updates reuse the mapped
//! id. The index itself is volatile client state — losing it costs a
//! rebuild, never durability (the store and log are server-side).

use std::collections::HashMap;

/// An 8-byte key, as in the paper's YCSB setup.
pub type Key = u64;

/// Client-local index from keys to remote object ids.
#[derive(Default)]
pub struct KvIndex {
    map: HashMap<Key, u64>,
    next_obj: u64,
}

impl KvIndex {
    /// An empty index whose allocations start at object id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-load `n` sequential records (YCSB load phase): key `i` maps to
    /// object `i`.
    pub fn preload(n: u64) -> Self {
        KvIndex {
            map: (0..n).map(|i| (i, i)).collect(),
            next_obj: n,
        }
    }

    /// The object id for `key`, if present.
    pub fn lookup(&self, key: Key) -> Option<u64> {
        self.map.get(&key).copied()
    }

    /// Map `key` for an update-or-insert: existing keys keep their object
    /// id; new keys get a fresh one. Returns `(obj_id, inserted)`.
    pub fn upsert(&mut self, key: Key) -> (u64, bool) {
        if let Some(&obj) = self.map.get(&key) {
            (obj, false)
        } else {
            let obj = self.next_obj;
            self.next_obj += 1;
            self.map.insert(key, obj);
            (obj, true)
        }
    }

    /// Remove a key; returns its object id (now free for reuse by the
    /// application's own allocator policy).
    pub fn remove(&mut self, key: Key) -> Option<u64> {
        self.map.remove(&key)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// How the index's live object ids spread over `shards` shards under
    /// `route` (e.g. `|obj| map.shard_of(obj)`): element `s` counts the
    /// objects shard `s` serves. Sizing input for per-shard store regions
    /// — a shard's region must hold its spread, not the global id count.
    pub fn shard_spread(&self, shards: usize, route: impl Fn(u64) -> usize) -> Vec<usize> {
        let mut counts = vec![0usize; shards];
        for &obj in self.map.values() {
            counts[route(obj)] += 1;
        }
        counts
    }

    /// The `count` smallest keys ≥ `start`, in order (a scan's key set —
    /// YCSB E resolves ranges client-side before fetching).
    pub fn scan_keys(&self, start: Key, count: usize) -> Vec<(Key, u64)> {
        let mut hits: Vec<(Key, u64)> = self
            .map
            .iter()
            .filter(|(k, _)| **k >= start)
            .map(|(k, v)| (*k, *v))
            .collect();
        hits.sort_unstable_by_key(|(k, _)| *k);
        hits.truncate(count);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preload_maps_identity() {
        let idx = KvIndex::preload(100);
        assert_eq!(idx.len(), 100);
        assert_eq!(idx.lookup(42), Some(42));
        assert_eq!(idx.lookup(100), None);
    }

    #[test]
    fn upsert_reuses_then_allocates() {
        let mut idx = KvIndex::preload(10);
        let (obj, inserted) = idx.upsert(5);
        assert_eq!((obj, inserted), (5, false));
        let (obj, inserted) = idx.upsert(999);
        assert_eq!((obj, inserted), (10, true));
        let (obj2, inserted2) = idx.upsert(999);
        assert_eq!((obj2, inserted2), (obj, false));
    }

    #[test]
    fn remove_frees_key_not_id() {
        let mut idx = KvIndex::preload(4);
        assert_eq!(idx.remove(2), Some(2));
        assert_eq!(idx.lookup(2), None);
        // A re-insert gets a fresh id — ids are never silently recycled.
        let (obj, inserted) = idx.upsert(2);
        assert!(inserted);
        assert_eq!(obj, 4);
    }

    #[test]
    fn scan_keys_ordered_window() {
        let mut idx = KvIndex::new();
        for k in [9u64, 3, 7, 1, 5] {
            idx.upsert(k);
        }
        let hits = idx.scan_keys(3, 3);
        let keys: Vec<u64> = hits.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![3, 5, 7]);
    }

    #[test]
    fn preloaded_index_spreads_evenly_under_striping() {
        let idx = KvIndex::preload(1000);
        let map = prdma::ShardMap::new(4);
        let spread = idx.shard_spread(4, |obj| map.shard_of(obj));
        assert_eq!(spread, vec![250; 4]);
        // And each shard's local span bounds its region sizing.
        assert_eq!(map.local_span(1000), 250);
    }

    #[test]
    fn empty_index_behaves() {
        let idx = KvIndex::new();
        assert!(idx.is_empty());
        assert!(idx.scan_keys(0, 10).is_empty());
    }
}
