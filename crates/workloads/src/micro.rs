//! The paper's micro-benchmark (Section 5.1): 50 K objects in the remote
//! server's PM, 300 K read/write operations, zipfian (0.99) access,
//! configurable object size, read ratio, and server load profile.

use prdma::{Request, RpcClient};
use prdma_rnic::Payload;
use prdma_simnet::{Histogram, SimDuration, SimHandle, Summary};

use crate::dist::{workload_rng, KeyDist, Zipfian};

/// Micro-benchmark parameters (defaults follow the paper).
#[derive(Debug, Clone)]
pub struct MicroConfig {
    /// Objects pre-generated at the server.
    pub objects: u64,
    /// Operations to issue.
    pub ops: u64,
    /// Object size in bytes.
    pub object_size: u64,
    /// Fraction of reads (paper default: 1:1 read/write).
    pub read_ratio: f64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            objects: 50_000,
            ops: 300_000,
            object_size: 64 * 1024,
            read_ratio: 0.5,
            seed: 42,
        }
    }
}

impl MicroConfig {
    /// Paper defaults with a different object size and op count (bench
    /// targets scale `ops` down; simulated time is unaffected by wall
    /// constraints, but harness runtime is).
    pub fn sized(object_size: u64, ops: u64) -> Self {
        MicroConfig {
            object_size,
            ops,
            ..Default::default()
        }
    }
}

/// Results of one micro-benchmark run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Operations completed.
    pub ops: u64,
    /// Operations rejected as unsupported (e.g. FaSST over-MTU).
    pub unsupported: u64,
    /// Operations that failed at the transport/RPC level even after the
    /// system's own retries (loss bursts, server crashes). These count
    /// toward elapsed time but not toward the latency distribution.
    pub failed: u64,
    /// Total simulated duration.
    pub elapsed: SimDuration,
    /// Per-op latency summary.
    pub latency: Summary,
    /// Throughput in K-operations per simulated second.
    pub kops: f64,
}

impl RunResult {
    fn from_histogram(
        ops: u64,
        unsupported: u64,
        failed: u64,
        elapsed: SimDuration,
        h: &Histogram,
    ) -> Self {
        let kops = if elapsed > SimDuration::ZERO {
            ops as f64 / elapsed.as_secs_f64() / 1e3
        } else {
            0.0
        };
        RunResult {
            ops,
            unsupported,
            failed,
            elapsed,
            latency: h.summary(),
            kops,
        }
    }
}

/// Run the micro-benchmark against `client`. Returns per-op latency and
/// throughput in simulated time.
pub async fn run_micro(client: &dyn RpcClient, h: &SimHandle, cfg: &MicroConfig) -> RunResult {
    let mut rng = workload_rng(cfg.seed);
    let dist = KeyDist::zipfian(cfg.objects);
    let mut hist = Histogram::new();
    let mut done = 0u64;
    let mut unsupported = 0u64;
    let mut failed = 0u64;
    let t0 = h.now();
    for i in 0..cfg.ops {
        let obj = dist.sample(&mut rng);
        let is_read = rng.gen::<f64>() < cfg.read_ratio;
        let req = if is_read {
            Request::Get {
                obj,
                len: cfg.object_size,
            }
        } else {
            Request::Put {
                obj,
                data: Payload::synthetic(cfg.object_size, i),
            }
        };
        let start = h.now();
        match client.call(req).await {
            Ok(_) => {
                hist.record_duration(h.now() - start);
                done += 1;
            }
            Err(prdma::RpcError::Unsupported(_)) => {
                unsupported += 1;
            }
            // Transport loss or a server outage the system's own retries
            // could not ride out: the op failed, the run continues (a
            // benchmark must survive the faults it measures).
            Err(_) => {
                failed += 1;
            }
        }
    }
    RunResult::from_histogram(done, unsupported, failed, h.now() - t0, &hist)
}

/// Results of a mixed run with read and write latency summarized
/// *separately* — the cache figure needs the GET percentiles alone, since
/// a blended mean hides the read fast path behind the write tail.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// Operations completed (reads + writes).
    pub ops: u64,
    /// Total simulated duration.
    pub elapsed: SimDuration,
    /// Throughput in K-operations per simulated second.
    pub kops: f64,
    /// GET latency summary.
    pub get: Summary,
    /// PUT latency summary.
    pub put: Summary,
}

/// Run the micro-benchmark mix with an explicit zipfian skew `theta`,
/// recording GET and PUT latencies in separate histograms (the `fig_cache`
/// sweep varies skew and reads off the GET percentiles).
pub async fn run_micro_split(
    client: &dyn RpcClient,
    h: &SimHandle,
    cfg: &MicroConfig,
    theta: f64,
) -> SplitResult {
    let mut rng = workload_rng(cfg.seed);
    let dist = Zipfian::new(cfg.objects, theta);
    let mut gets = Histogram::new();
    let mut puts = Histogram::new();
    let mut done = 0u64;
    let t0 = h.now();
    for i in 0..cfg.ops {
        let obj = dist.sample(&mut rng);
        let is_read = rng.gen::<f64>() < cfg.read_ratio;
        let start = h.now();
        let res = if is_read {
            client
                .call(Request::Get {
                    obj,
                    len: cfg.object_size,
                })
                .await
        } else {
            client
                .call(Request::Put {
                    obj,
                    data: Payload::synthetic(cfg.object_size, i),
                })
                .await
        };
        if res.is_ok() {
            let d = h.now() - start;
            if is_read {
                gets.record_duration(d);
            } else {
                puts.record_duration(d);
            }
            done += 1;
        }
    }
    let elapsed = h.now() - t0;
    let kops = if elapsed > SimDuration::ZERO {
        done as f64 / elapsed.as_secs_f64() / 1e3
    } else {
        0.0
    };
    SplitResult {
        ops: done,
        elapsed,
        kops,
        get: gets.summary(),
        put: puts.summary(),
    }
}

/// Run `senders` concurrent clients against one server; returns the merged
/// latency histogram and aggregate stats (paper Fig. 17).
pub async fn run_micro_concurrent(
    clients: Vec<Box<dyn RpcClient>>,
    h: &SimHandle,
    cfg: &MicroConfig,
) -> RunResult {
    let t0 = h.now();
    let n = clients.len();
    let mut joins = Vec::with_capacity(n);
    for (i, client) in clients.into_iter().enumerate() {
        let cfg = MicroConfig {
            seed: cfg.seed.wrapping_add(i as u64 * 7919),
            ..cfg.clone()
        };
        let h2 = h.clone();
        joins.push(h.spawn(async move {
            let r = run_micro(client.as_ref(), &h2, &cfg).await;
            (r.ops, r.unsupported, r.failed, r.latency)
        }));
    }
    let mut hist = Histogram::new();
    let mut ops = 0;
    let mut unsupported = 0;
    let mut failed = 0;
    for j in joins {
        let (o, u, f, s) = j.await;
        ops += o;
        unsupported += u;
        failed += f;
        // Rebuild an approximate merged histogram from summaries is lossy;
        // instead we re-record the mean per client weighted by count.
        // For exact percentiles across clients use `run_micro_merged`.
        for _ in 0..o {
            hist.record(s.mean_ns as u64);
        }
    }
    RunResult::from_histogram(ops, unsupported, failed, h.now() - t0, &hist)
}

/// Like [`run_micro_concurrent`] but collects every sample exactly, via a
/// shared histogram.
pub async fn run_micro_merged(
    clients: Vec<Box<dyn RpcClient>>,
    h: &SimHandle,
    cfg: &MicroConfig,
) -> RunResult {
    use std::cell::RefCell;
    use std::rc::Rc;
    let hist: Rc<RefCell<Histogram>> = Rc::default();
    let t0 = h.now();
    let mut joins = Vec::with_capacity(clients.len());
    for (i, client) in clients.into_iter().enumerate() {
        let cfg = MicroConfig {
            seed: cfg.seed.wrapping_add(i as u64 * 7919),
            ..cfg.clone()
        };
        let h2 = h.clone();
        let hist = Rc::clone(&hist);
        joins.push(h.spawn(async move {
            let mut rng = workload_rng(cfg.seed);
            let dist = KeyDist::zipfian(cfg.objects);
            let mut done = 0u64;
            let mut unsupported = 0u64;
            let mut failed = 0u64;
            for i in 0..cfg.ops {
                let obj = dist.sample(&mut rng);
                let is_read = rng.gen::<f64>() < cfg.read_ratio;
                let req = if is_read {
                    Request::Get {
                        obj,
                        len: cfg.object_size,
                    }
                } else {
                    Request::Put {
                        obj,
                        data: Payload::synthetic(cfg.object_size, i),
                    }
                };
                let start = h2.now();
                match client.call(req).await {
                    Ok(_) => {
                        hist.borrow_mut().record_duration(h2.now() - start);
                        done += 1;
                    }
                    Err(prdma::RpcError::Unsupported(_)) => unsupported += 1,
                    Err(_) => failed += 1,
                }
            }
            (done, unsupported, failed)
        }));
    }
    let mut ops = 0;
    let mut unsupported = 0;
    let mut failed = 0;
    for j in joins {
        let (o, u, f) = j.await;
        ops += o;
        unsupported += u;
        failed += f;
    }
    let hist = hist.borrow();
    RunResult::from_histogram(ops, unsupported, failed, h.now() - t0, &hist)
}

/// Closed-loop multi-client generator: every client runs the micro loop
/// independently (distinct seed, think-time-free), each recording into its
/// *own* histogram; the per-client histograms are then merged with
/// [`Histogram::merge`]. This is the aggregation the scale-out sweep uses
/// per shard, and `merge` is exact — summed per-bucket counts are
/// structurally identical to recording the union — so percentiles match
/// the shared-histogram path of [`run_micro_merged`] bit for bit.
pub async fn run_micro_fleet(
    clients: Vec<Box<dyn RpcClient>>,
    h: &SimHandle,
    cfg: &MicroConfig,
) -> RunResult {
    let t0 = h.now();
    let mut joins = Vec::with_capacity(clients.len());
    for (i, client) in clients.into_iter().enumerate() {
        let cfg = MicroConfig {
            seed: cfg.seed.wrapping_add(i as u64 * 7919),
            ..cfg.clone()
        };
        let h2 = h.clone();
        joins.push(h.spawn(async move {
            let mut rng = workload_rng(cfg.seed);
            let dist = KeyDist::zipfian(cfg.objects);
            let mut hist = Histogram::new();
            let mut done = 0u64;
            let mut unsupported = 0u64;
            let mut failed = 0u64;
            for i in 0..cfg.ops {
                let obj = dist.sample(&mut rng);
                let is_read = rng.gen::<f64>() < cfg.read_ratio;
                let req = if is_read {
                    Request::Get {
                        obj,
                        len: cfg.object_size,
                    }
                } else {
                    Request::Put {
                        obj,
                        data: Payload::synthetic(cfg.object_size, i),
                    }
                };
                let start = h2.now();
                match client.call(req).await {
                    Ok(_) => {
                        hist.record_duration(h2.now() - start);
                        done += 1;
                    }
                    Err(prdma::RpcError::Unsupported(_)) => unsupported += 1,
                    Err(_) => failed += 1,
                }
            }
            (done, unsupported, failed, hist)
        }));
    }
    let mut merged = Histogram::new();
    let mut ops = 0;
    let mut unsupported = 0;
    let mut failed = 0;
    for j in joins {
        let (o, u, f, hist) = j.await;
        ops += o;
        unsupported += u;
        failed += f;
        merged.merge(&hist);
    }
    RunResult::from_histogram(ops, unsupported, failed, h.now() - t0, &merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdma::ServerProfile;
    use prdma_baselines::{build_system, SystemKind, SystemOpts};
    use prdma_node::{Cluster, ClusterConfig};
    use prdma_simnet::Sim;

    fn quick(kind: SystemKind, cfg: MicroConfig) -> RunResult {
        let mut sim = Sim::new(5);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
        let opts = SystemOpts::for_object_size(cfg.object_size, ServerProfile::light());
        let client = build_system(&cluster, kind, 1, 0, 0, &opts);
        let h = sim.handle();
        sim.block_on(async move { run_micro(client.as_ref(), &h, &cfg).await })
    }

    #[test]
    fn micro_run_produces_consistent_stats() {
        let cfg = MicroConfig {
            objects: 100,
            ops: 200,
            object_size: 1024,
            ..Default::default()
        };
        let r = quick(SystemKind::WFlush, cfg);
        assert_eq!(r.ops, 200);
        assert!(r.kops > 0.0);
        assert!(r.latency.p99_ns >= r.latency.p50_ns);
        assert!(r.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn fasst_counts_unsupported_large_ops() {
        let cfg = MicroConfig {
            objects: 50,
            ops: 50,
            object_size: 65536,
            ..Default::default()
        };
        let r = quick(SystemKind::Fasst, cfg);
        assert_eq!(r.ops, 0);
        assert_eq!(r.unsupported, 50);
    }

    #[test]
    fn concurrent_clients_share_one_server() {
        let mut sim = Sim::new(6);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(4));
        let opts = SystemOpts::for_object_size(1024, ServerProfile::light());
        let clients: Vec<Box<dyn prdma::RpcClient>> = (1..4)
            .map(|i| build_system(&cluster, SystemKind::Farm, i, 0, i, &opts))
            .collect();
        let h = sim.handle();
        let cfg = MicroConfig {
            objects: 100,
            ops: 50,
            object_size: 1024,
            ..Default::default()
        };
        let r = sim.block_on(async move { run_micro_merged(clients, &h, &cfg).await });
        assert_eq!(r.ops, 150);
    }

    #[test]
    fn fleet_merge_matches_shared_histogram_exactly() {
        // Same cluster, same seeds: per-client histograms merged after the
        // fact must agree with the single shared histogram on every
        // reported percentile (the multi-shard aggregation invariant).
        let run = |merged: bool| {
            let mut sim = Sim::new(6);
            let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(4));
            let opts = SystemOpts::for_object_size(1024, ServerProfile::light());
            let clients: Vec<Box<dyn prdma::RpcClient>> = (1..4)
                .map(|i| build_system(&cluster, SystemKind::WFlush, i, 0, i, &opts))
                .collect();
            let h = sim.handle();
            let cfg = MicroConfig {
                objects: 100,
                ops: 60,
                object_size: 1024,
                ..Default::default()
            };
            sim.block_on(async move {
                if merged {
                    run_micro_merged(clients, &h, &cfg).await
                } else {
                    run_micro_fleet(clients, &h, &cfg).await
                }
            })
        };
        let shared = run(true);
        let fleet = run(false);
        assert_eq!(fleet.ops, shared.ops);
        assert_eq!(fleet.latency.p50_ns, shared.latency.p50_ns);
        assert_eq!(fleet.latency.p99_ns, shared.latency.p99_ns);
        assert_eq!(fleet.latency.max_ns, shared.latency.max_ns);
    }

    #[test]
    fn sharded_client_runs_micro_loop_across_servers() {
        let mut sim = Sim::new(11);
        let cluster = Cluster::new(sim.handle(), prdma_node::ClusterConfig::with_servers(2, 1));
        let map = prdma::ShardMap::new(2);
        let opts = SystemOpts::for_object_size(1024, ServerProfile::light());
        let client =
            prdma_baselines::build_sharded_system(&cluster, SystemKind::WFlush, map, 2, 0, &opts);
        let h = sim.handle();
        let cfg = MicroConfig {
            objects: 200,
            ops: 150,
            object_size: 1024,
            ..Default::default()
        };
        let r = sim.block_on(async move { run_micro(&client, &h, &cfg).await });
        assert_eq!(r.ops, 150);
        assert!(r.kops > 0.0);
    }
}
