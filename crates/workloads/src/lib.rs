//! # prdma-workloads
//!
//! Workload generators and experiment drivers for PRDMA-RS, matching the
//! paper's evaluation (Section 5):
//!
//! * [`micro`] — the micro-benchmark: 50 K objects, 300 K zipfian
//!   read/write ops, configurable object size and load profile.
//! * [`ycsb`] — native YCSB A–F drivers (8 B keys, 4 KB values).
//! * [`graph`] / [`pagerank`] — synthetic power-law graphs with the
//!   paper's dataset shapes, and PageRank fetching graph data over RPC.
//! * [`faults`] — the failure-recovery experiment: availability sweeps,
//!   unikernel restart latency, and the redo-log-vs-re-send comparison.
//! * [`openloop`] — open-loop load generation: Poisson/bursty arrival
//!   schedules over a 10⁴–10⁶ logical-client pool multiplexed onto
//!   bounded endpoint futures, latency from scheduled arrival.
//! * [`txn_mix`] — YCSB-T-style transactional mix over the durable 2PC
//!   transaction layer (commit latency + abort rate under skew).
//! * [`dist`] — zipfian / latest / uniform key distributions.

#![warn(missing_docs)]

pub mod dist;
pub mod faults;
pub mod graph;
pub mod kv;
pub mod micro;
pub mod openloop;
pub mod pagerank;
pub mod txn_mix;
pub mod ycsb;

pub use dist::{KeyDist, Zipfian};
pub use faults::{run_faulty, FaultConfig, FaultResult, MeasuredCosts, Scheme};
pub use graph::{generate, generate_power_law, Graph, GraphDataset};
pub use kv::KvIndex;
pub use micro::{
    run_micro, run_micro_merged, run_micro_split, MicroConfig, RunResult, SplitResult,
};
pub use openloop::{
    detect_knee, gen_schedule, run_openloop, Arrival, OpenLoopConfig, OpenLoopResult, RateShape,
    SkewShift,
};
pub use pagerank::{run_pagerank, PageRankConfig, PageRankResult};
pub use txn_mix::{run_txn_mix, TxnMixConfig, TxnMixResult};
pub use ycsb::{run_ycsb, YcsbConfig, YcsbWorkload};
