//! Failure-recovery experiment (paper Section 5.4, Fig. 12).
//!
//! The paper deploys RPC services in unikernel VMs (~300 ms restart),
//! injects failures at several server-availability levels, sets the RDMA
//! re-transfer interval to 100 ms, runs 10⁹ operations per mix, and
//! reports total execution time of the durable RPCs normalized to a
//! traditional RPC system (where the client re-sends requests after a
//! failure).
//!
//! Running 10⁹ full-transport operations is wasteful (per-op behaviour is
//! constant between failures), so this module uses a two-level approach:
//!
//! 1. **Measure** per-op read/write latencies and the persistence window
//!    with the full simulation (a few hundred ops).
//! 2. **Replay** the op stream at scale with a seeded Monte-Carlo failure
//!    process: exponential inter-failure times matching the availability
//!    level, 300 ms restart, and per-scheme recovery costs:
//!    * *traditional*: every in-flight request waits out the 100 ms
//!      re-transfer interval and is re-sent by the client;
//!    * *durable RPC*: persisted entries replay from the redo log with no
//!      client involvement; only a request caught before its flush-ACK
//!      (the persistence window) is re-sent.

use prdma_simnet::SimDuration;

use crate::dist::workload_rng;

/// Recovery scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The paper's durable RPCs: redo-log replay, no client re-send for
    /// persisted entries.
    DurableRpc,
    /// Traditional RPC: client re-issues requests after failures.
    Traditional,
}

/// Per-op costs measured from the full simulation.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredCosts {
    /// Mean read latency.
    pub read: SimDuration,
    /// Mean write latency (to the scheme's completion point).
    pub write: SimDuration,
    /// For durable RPCs: how long a write is vulnerable (sent but not yet
    /// flush-ACKed). For traditional RPCs the whole op is vulnerable.
    pub persistence_window: SimDuration,
    /// Server-side cost to replay one logged entry after restart.
    pub replay: SimDuration,
}

/// Fault-injection parameters (paper defaults).
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Server availability (e.g. 0.99, 0.999, 0.9999, 0.99999).
    pub availability: f64,
    /// Restart latency (unikernel: ~300 ms).
    pub restart: SimDuration,
    /// RDMA packet re-transfer interval (100 ms).
    pub retransfer: SimDuration,
    /// Operations in the replayed stream (paper: 1e9).
    pub ops: u64,
    /// Fraction of writes in the mix.
    pub write_ratio: f64,
    /// Average outstanding (logged, unprocessed) entries at crash time —
    /// the durable scheme replays these from the log.
    pub avg_outstanding: u64,
    /// How much of the restart outage the redo log can absorb for a
    /// write stream: while the service restarts, the one-sided
    /// write+flush path keeps appending until the log fills. A 64 MB
    /// log of 4 KB entries absorbs ~270 ms of a 300 ms outage.
    pub log_absorption: SimDuration,
    /// RNG seed for the failure process.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            availability: 0.99,
            restart: SimDuration::from_millis(300),
            retransfer: SimDuration::from_millis(100),
            ops: 1_000_000_000,
            write_ratio: 0.5,
            avg_outstanding: 16,
            log_absorption: SimDuration::from_millis(250),
            seed: 99,
        }
    }
}

/// Outcome of one fault-injected run.
#[derive(Debug, Clone, Copy)]
pub struct FaultResult {
    /// Total execution time including failures and recovery.
    pub total: SimDuration,
    /// Failures injected.
    pub failures: u64,
    /// Ops re-sent by the client.
    pub resent: u64,
    /// Ops replayed from the redo log (durable scheme only).
    pub replayed: u64,
}

/// Replay `cfg.ops` operations under the failure process and return the
/// total execution time for `scheme`.
///
/// **Failure model.** The paper deploys the RPC *service* in a unikernel
/// VM and "simulates unexpected failures with different probabilities of
/// server availability": each RPC observes the service up with
/// probability `availability`. Crucially, a service crash does not take
/// down the RNIC or the PM — the one-sided persistence path keeps
/// working. Per-scheme consequences when an op hits a failure:
///
/// * **Traditional RPC**: the op is lost in volatile buffers; the client
///   waits out the service restart and the 100 ms RDMA re-transfer
///   interval, then re-sends the request.
/// * **Durable RPC, write**: if the flush ACK had already arrived
///   (probability `1 - persistence_window / write`), nothing is lost —
///   the entry is in the PM log, the restarted service replays it
///   server-side, and the client's one-sided write stream continues
///   without waiting. Only a write caught inside its persistence window
///   is re-sent (no re-transfer wait: the connection's one-sided path is
///   alive).
/// * **Durable RPC, read**: reads need the service; the client waits the
///   restart and re-issues (but skips the re-transfer interval).
///
/// The loop advances failure-to-failure (ops between failures are
/// aggregated at the mean op cost), so 10⁹-op runs finish in
/// milliseconds of wall time while the failure schedule stays
/// Monte-Carlo. Failure indices come from a dedicated RNG stream, so both
/// schemes see the same failure schedule and the comparison isolates
/// recovery cost exactly.
pub fn run_faulty(scheme: Scheme, costs: &MeasuredCosts, cfg: &FaultConfig) -> FaultResult {
    assert!(cfg.availability < 1.0, "availability must be < 1");
    let p_fail = 1.0 - cfg.availability;
    let mut fail_rng = workload_rng(cfg.seed ^ 0xFA17);
    let mut op_rng = workload_rng(cfg.seed);

    let w = cfg.write_ratio;
    let mean_op_ns = w * costs.write.as_nanos() as f64 + (1.0 - w) * costs.read.as_nanos() as f64;
    assert!(mean_op_ns > 0.0, "zero op cost");

    let mut total_ns: u64 = 0;
    let mut remaining = cfg.ops;
    let mut failures = 0u64;
    let mut resent = 0u64;
    let mut replayed = 0u64;

    while remaining > 0 {
        // Geometric gap to the next failed op: ~ Exp(p) in op counts.
        let gap = (draw_exp(&mut fail_rng, 1.0 / p_fail)).max(1);
        if gap >= remaining {
            total_ns += (remaining as f64 * mean_op_ns).round() as u64;
            break;
        }
        // `gap - 1` clean ops, then the failed one.
        total_ns += ((gap - 1) as f64 * mean_op_ns).round() as u64;
        remaining -= gap;
        failures += 1;

        let is_write = op_rng.gen::<f64>() < w;
        let dur = if is_write {
            costs.write.as_nanos()
        } else {
            costs.read.as_nanos()
        };

        match scheme {
            Scheme::Traditional => {
                total_ns += cfg.restart.as_nanos() + cfg.retransfer.as_nanos() + dur;
                resent += 1;
            }
            Scheme::DurableRpc => {
                if is_write {
                    // The one-sided write+flush path stays alive during
                    // the service restart; the stream only stalls once
                    // the redo log fills (flow control).
                    total_ns += cfg
                        .restart
                        .as_nanos()
                        .saturating_sub(cfg.log_absorption.as_nanos());
                    // Replay of outstanding entries happens server-side,
                    // overlapped with the client's continuing one-sided
                    // writes; the client only re-sends if caught inside
                    // the persistence window.
                    replayed += cfg.avg_outstanding;
                    total_ns += costs.replay.as_nanos() * cfg.avg_outstanding;
                    let vulnerable =
                        (costs.persistence_window.as_nanos() as f64 / dur.max(1) as f64).min(1.0);
                    if op_rng.gen::<f64>() < vulnerable {
                        total_ns += dur;
                        resent += 1;
                    }
                } else {
                    // Reads need the service back.
                    total_ns += cfg.restart.as_nanos() + dur;
                    resent += 1;
                }
            }
        }
    }

    FaultResult {
        total: SimDuration::from_nanos(total_ns),
        failures,
        resent,
        replayed,
    }
}

fn draw_exp(rng: &mut prdma_simnet::rng::SmallRng, mean_ns: f64) -> u64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    (-u.ln() * mean_ns).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> MeasuredCosts {
        MeasuredCosts {
            read: SimDuration::from_micros(10),
            write: SimDuration::from_micros(12),
            persistence_window: SimDuration::from_micros(3),
            replay: SimDuration::from_micros(2),
        }
    }

    fn cfg(availability: f64, write_ratio: f64) -> FaultConfig {
        FaultConfig {
            availability,
            write_ratio,
            // 5e7 ops keep >10^5 failures at 99% availability while the
            // test stays fast; benches run the paper-scale 1e9.
            ops: 50_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn durable_scheme_is_never_slower() {
        for a in [0.99, 0.999, 0.9999] {
            for w in [0.0, 0.5, 1.0] {
                let c = cfg(a, w);
                let d = run_faulty(Scheme::DurableRpc, &costs(), &c);
                let t = run_faulty(Scheme::Traditional, &costs(), &c);
                assert!(
                    d.total <= t.total,
                    "a={a} w={w}: durable {:?} > traditional {:?}",
                    d.total,
                    t.total
                );
            }
        }
    }

    #[test]
    fn write_intensive_benefits_more() {
        let a = 0.99;
        let norm = |w: f64| {
            let c = cfg(a, w);
            let d = run_faulty(Scheme::DurableRpc, &costs(), &c);
            let t = run_faulty(Scheme::Traditional, &costs(), &c);
            d.total.as_nanos() as f64 / t.total.as_nanos() as f64
        };
        let read_only = norm(0.0);
        let write_only = norm(1.0);
        assert!(
            write_only < read_only,
            "write-only {write_only} !< read-only {read_only}"
        );
    }

    #[test]
    fn lower_availability_means_more_failures() {
        let c_low = cfg(0.99, 0.5);
        let c_high = cfg(0.9999, 0.5);
        let f_low = run_faulty(Scheme::Traditional, &costs(), &c_low).failures;
        let f_high = run_faulty(Scheme::Traditional, &costs(), &c_high).failures;
        assert!(f_low > f_high * 5, "low {f_low} vs high {f_high}");
    }

    #[test]
    fn failure_free_runs_match_between_schemes() {
        let c = FaultConfig {
            availability: 0.999_999_999,
            ops: 10_000,
            ..Default::default()
        };
        let d = run_faulty(Scheme::DurableRpc, &costs(), &c);
        let t = run_faulty(Scheme::Traditional, &costs(), &c);
        if d.failures == 0 && t.failures == 0 {
            assert_eq!(d.total, t.total);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = cfg(0.99, 0.5);
        let a = run_faulty(Scheme::DurableRpc, &costs(), &c);
        let b = run_faulty(Scheme::DurableRpc, &costs(), &c);
        assert_eq!(a.total, b.total);
        assert_eq!(a.failures, b.failures);
    }
}
