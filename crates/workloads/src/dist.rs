//! Key-access distributions: zipfian (YCSB's default, 0.99 skew), the
//! "latest" distribution (YCSB workload D), and uniform.

use prdma_simnet::rng::SmallRng;

/// A zipfian generator over `0..n` (Gray et al. / YCSB formulation).
///
/// Item 0 is the most popular. With `theta = 0.99` (the paper's "99%
/// skewness"), the hottest ~1% of keys absorb most accesses.
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
}

impl Zipfian {
    /// Build a generator over `0..n` with skew `theta` in (0, 1).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta_2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        Zipfian {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw the next key.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }
}

/// YCSB-style access pattern selector.
pub enum KeyDist {
    /// Zipfian over the whole key space.
    Zipfian(Zipfian),
    /// "Latest": zipfian over recency — new inserts are hottest
    /// (YCSB workload D).
    Latest {
        /// Recency skew generator.
        zipf: Zipfian,
        /// Current number of records (grows with inserts).
        count: std::cell::Cell<u64>,
    },
    /// Uniform over the key space.
    Uniform {
        /// Key-space size.
        n: u64,
    },
}

impl KeyDist {
    /// Zipfian with the paper's 0.99 skew.
    pub fn zipfian(n: u64) -> Self {
        KeyDist::Zipfian(Zipfian::new(n, 0.99))
    }

    /// Latest-distribution over an initially `n`-record table.
    pub fn latest(n: u64) -> Self {
        KeyDist::Latest {
            zipf: Zipfian::new(n, 0.99),
            count: std::cell::Cell::new(n),
        }
    }

    /// Uniform over `0..n`.
    pub fn uniform(n: u64) -> Self {
        KeyDist::Uniform { n }
    }

    /// Draw a key.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match self {
            KeyDist::Zipfian(z) => z.sample(rng),
            KeyDist::Latest { zipf, count } => {
                let n = count.get();
                let back = zipf.sample(rng).min(n - 1);
                n - 1 - back
            }
            KeyDist::Uniform { n } => rng.gen_range(0..*n),
        }
    }

    /// Record an insert (grows the "latest" key space).
    pub fn on_insert(&self) -> u64 {
        match self {
            KeyDist::Latest { count, .. } => {
                let k = count.get();
                count.set(k + 1);
                k
            }
            KeyDist::Zipfian(z) => z.n(),
            KeyDist::Uniform { n } => *n,
        }
    }
}

/// A deterministic RNG for workload generation, independent of the
/// simulator's scheduling RNG (so op sequences don't change when the
/// protocol model changes).
pub fn workload_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_heavily_skewed_at_099() {
        let z = Zipfian::new(50_000, 0.99);
        let mut rng = workload_rng(1);
        let mut head_hits = 0;
        let samples = 100_000;
        for _ in 0..samples {
            if z.sample(&mut rng) < 500 {
                head_hits += 1;
            }
        }
        // With theta=0.99 the hottest 1% of keys should draw >40% of
        // accesses.
        let frac = head_hits as f64 / samples as f64;
        assert!(frac > 0.4, "head fraction {frac}");
    }

    #[test]
    fn zipfian_stays_in_range() {
        let z = Zipfian::new(100, 0.99);
        let mut rng = workload_rng(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipfian_is_deterministic_per_seed() {
        let z = Zipfian::new(1000, 0.9);
        let draw = |seed| {
            let mut rng = workload_rng(seed);
            (0..50).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn latest_prefers_recent_keys() {
        let d = KeyDist::latest(10_000);
        let mut rng = workload_rng(3);
        let mut recent = 0;
        for _ in 0..10_000 {
            if d.sample(&mut rng) >= 9_000 {
                recent += 1;
            }
        }
        assert!(recent > 6_000, "recent fraction {recent}");
        // Inserts extend the space.
        let k = d.on_insert();
        assert_eq!(k, 10_000);
    }

    #[test]
    fn uniform_covers_space() {
        let d = KeyDist::uniform(10);
        let mut rng = workload_rng(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[d.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
