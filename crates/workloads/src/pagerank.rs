//! PageRank over remote graph data (paper Section 5.3, Fig. 10).
//!
//! The graph lives in the remote server's PM; the compute node keeps the
//! rank vectors in local memory and fetches the graph through RPCs each
//! iteration (the paper's setup). The rank arithmetic is executed for
//! real; only the data movement is simulated.

use prdma::{Request, RpcClient};
use prdma_simnet::{SimDuration, SimHandle};

use crate::graph::Graph;

/// PageRank parameters.
#[derive(Debug, Clone)]
pub struct PageRankConfig {
    /// Damping factor.
    pub damping: f64,
    /// Iterations to run (the paper does not fix a count; 10 is typical
    /// and EXPERIMENTS.md notes the scaling).
    pub iterations: u32,
    /// RPC fetch granularity in bytes (the client pulls the CSR in pages).
    pub page_bytes: u64,
    /// Per-edge local compute charged to the client CPU, in nanoseconds
    /// (models the "compute-intensive" client the paper emphasizes).
    pub ns_per_edge: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            iterations: 10,
            page_bytes: 4096,
            ns_per_edge: 4.0,
        }
    }
}

/// Result of a PageRank run.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Total simulated execution time.
    pub elapsed: SimDuration,
    /// Number of RPC fetches issued.
    pub fetches: u64,
    /// Final ranks (sums to ~1).
    pub ranks: Vec<f64>,
}

/// Run PageRank with the graph's pages fetched via `client` each
/// iteration.
pub async fn run_pagerank(
    client: &dyn RpcClient,
    h: &SimHandle,
    graph: &Graph,
    cfg: &PageRankConfig,
) -> PageRankResult {
    let n = graph.nodes as usize;
    let mut ranks = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let total_bytes = graph.stored_bytes();
    let pages = total_bytes.div_ceil(cfg.page_bytes);
    let mut fetches = 0u64;
    let t0 = h.now();

    for _ in 0..cfg.iterations {
        // Fetch the graph pages from the remote PM.
        for p in 0..pages {
            let len = cfg.page_bytes.min(total_bytes - p * cfg.page_bytes);
            client
                .call(Request::Get { obj: p, len })
                .await
                .expect("graph fetch failed");
            fetches += 1;
        }
        // Local compute: the real rank update (dangling-node mass is
        // redistributed uniformly so ranks stay a distribution).
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0f64;
        for v in 0..graph.nodes {
            let deg = graph.degree(v);
            if deg == 0 {
                dangling += ranks[v as usize];
                continue;
            }
            let share = ranks[v as usize] / deg as f64;
            for &t in graph.neighbors(v) {
                next[t as usize] += share;
            }
        }
        let base = (1.0 - cfg.damping + cfg.damping * dangling) / n as f64;
        for (r, nx) in ranks.iter_mut().zip(next.iter()) {
            *r = base + cfg.damping * nx;
        }
        let compute =
            SimDuration::from_nanos((graph.edges() as f64 * cfg.ns_per_edge).round() as u64);
        h.sleep(compute).await;
    }

    PageRankResult {
        elapsed: h.now() - t0,
        fetches,
        ranks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::generate_power_law;
    use prdma::ServerProfile;
    use prdma_baselines::{build_system, SystemKind, SystemOpts};
    use prdma_node::{Cluster, ClusterConfig};
    use prdma_simnet::Sim;

    fn run(kind: SystemKind, iterations: u32) -> PageRankResult {
        let mut sim = Sim::new(8);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::with_nodes(2));
        let opts = SystemOpts::for_object_size(4096, ServerProfile::light());
        let client = build_system(&cluster, kind, 1, 0, 0, &opts);
        let g = generate_power_law(500, 3000, 1);
        let cfg = PageRankConfig {
            iterations,
            ..Default::default()
        };
        let h = sim.handle();
        sim.block_on(async move { run_pagerank(client.as_ref(), &h, &g, &cfg).await })
    }

    #[test]
    fn ranks_form_a_distribution() {
        let r = run(SystemKind::WFlush, 10);
        let sum: f64 = r.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "rank sum {sum}");
        assert!(r.ranks.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn fetch_count_matches_pages_times_iterations() {
        let r = run(SystemKind::Farm, 3);
        // 501*8 + 3000*4 = 16008 bytes -> 4 pages of 4096
        assert_eq!(r.fetches, 4 * 3);
    }

    #[test]
    fn more_iterations_take_longer() {
        let r3 = run(SystemKind::Farm, 3);
        let r6 = run(SystemKind::Farm, 6);
        assert!(r6.elapsed > r3.elapsed);
    }
}
