//! YCSB-T-style transactional mix over the durable transaction layer:
//! each transaction reads `reads_per_txn` zipfian keys, writes
//! `writes_per_txn` zipfian keys, then commits through durable 2PC.
//! Aborted transactions are *not* retried — the abort rate is the
//! measurement (it is what the `fig_txn` sweep reports against shard
//! count and skew).

use std::rc::Rc;

use prdma::txn::{TxnClient, TxnOutcome};
use prdma_rnic::Payload;
use prdma_simnet::{Histogram, SimDuration, SimHandle, Summary};

use crate::dist::{workload_rng, Zipfian};

/// Transactional mix parameters.
#[derive(Debug, Clone)]
pub struct TxnMixConfig {
    /// Transactions each client attempts.
    pub txns: u64,
    /// Keys read (with OCC version capture) per transaction.
    pub reads_per_txn: usize,
    /// Keys written per transaction.
    pub writes_per_txn: usize,
    /// Keyspace size (global object ids `0..objects`).
    pub objects: u64,
    /// Value size in bytes.
    pub value_bytes: u64,
    /// Zipfian skew of the key choice (both reads and writes).
    pub theta: f64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for TxnMixConfig {
    fn default() -> Self {
        TxnMixConfig {
            txns: 2_000,
            reads_per_txn: 2,
            writes_per_txn: 2,
            objects: 10_000,
            value_bytes: 128,
            theta: 0.99,
            seed: 42,
        }
    }
}

/// Results of one transactional-mix run (all clients pooled).
#[derive(Debug, Clone)]
pub struct TxnMixResult {
    /// Transactions attempted.
    pub attempted: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (conflict or validation failure).
    pub aborted: u64,
    /// Commit latency summary (committed transactions only, measured
    /// from `commit()` entry to ACK).
    pub latency: Summary,
    /// Total simulated duration.
    pub elapsed: SimDuration,
    /// Committed-transaction throughput in K-txns per simulated second.
    pub ktps: f64,
}

impl TxnMixResult {
    /// Aborts as a fraction of attempts.
    pub fn abort_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.aborted as f64 / self.attempted as f64
        }
    }
}

/// Run the transactional mix: every client drives `cfg.txns`
/// transactions concurrently (one task per client), keys drawn
/// zipfian(θ) over the shared keyspace so clients genuinely collide on
/// hot keys.
pub async fn run_txn_mix(
    h: &SimHandle,
    clients: &[Rc<TxnClient>],
    cfg: &TxnMixConfig,
) -> TxnMixResult {
    let t0 = h.now();
    let mut joins = Vec::with_capacity(clients.len());
    for (i, client) in clients.iter().enumerate() {
        let client = Rc::clone(client);
        let cfg = cfg.clone();
        let h = h.clone();
        joins.push(
            h.clone()
                .spawn(async move { run_one_client(&h, &client, i, cfg).await }),
        );
    }
    let mut hist = Histogram::new();
    let mut attempted = 0u64;
    let mut committed = 0u64;
    let mut aborted = 0u64;
    for j in joins {
        let (a, c, ab, h_client) = j.await;
        attempted += a;
        committed += c;
        aborted += ab;
        hist.merge(&h_client);
    }
    let elapsed = h.now() - t0;
    let ktps = if elapsed > SimDuration::ZERO {
        committed as f64 / elapsed.as_secs_f64() / 1e3
    } else {
        0.0
    };
    TxnMixResult {
        attempted,
        committed,
        aborted,
        latency: hist.summary(),
        elapsed,
        ktps,
    }
}

async fn run_one_client(
    h: &SimHandle,
    client: &TxnClient,
    index: usize,
    cfg: TxnMixConfig,
) -> (u64, u64, u64, Histogram) {
    let mut rng = workload_rng(cfg.seed.wrapping_add(index as u64 * 7919));
    let zipf = Zipfian::new(cfg.objects, cfg.theta);
    let mut hist = Histogram::new();
    let mut committed = 0u64;
    let mut aborted = 0u64;
    for _ in 0..cfg.txns {
        let mut txn = client.begin();
        for _ in 0..cfg.reads_per_txn {
            let key = zipf.sample(&mut rng);
            let _ = client.read(&mut txn, key, cfg.value_bytes).await;
        }
        for w in 0..cfg.writes_per_txn {
            let key = zipf.sample(&mut rng);
            txn.put(
                key,
                &Payload::synthetic(cfg.value_bytes, key ^ ((w as u64) << 48)),
            );
        }
        let t0 = h.now();
        match client.commit(txn).await {
            Ok(TxnOutcome::Committed) => {
                hist.record_duration(h.now() - t0);
                committed += 1;
            }
            Ok(TxnOutcome::Aborted(_)) | Err(_) => aborted += 1,
        }
    }
    (cfg.txns, committed, aborted, hist)
}
