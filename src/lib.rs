//! # prdma-suite
//!
//! Umbrella crate for the PRDMA-RS workspace: re-exports every subsystem
//! so the runnable examples and cross-crate integration tests have a
//! single import surface. See the workspace `README.md` for the map.

pub use prdma as core;
pub use prdma_baselines as baselines;
pub use prdma_node as node;
pub use prdma_pmem as pmem;
pub use prdma_rnic as rnic;
pub use prdma_simnet as simnet;
pub use prdma_workloads as workloads;
